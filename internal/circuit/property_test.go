package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"

	"udsim/internal/logic"
)

// buildWiredRandom constructs a random circuit containing wired-AND and
// wired-OR nets, plus its explicit-resolution-gate reference form built
// side by side, so Normalize can be checked against it functionally.
func buildWiredRandom(seed int64) (wired *Circuit, inputs int) {
	r := rand.New(rand.NewSource(seed))
	b := NewBuilder("w")
	inputs = 3 + r.Intn(4)
	pool := make([]NetID, 0, 16)
	for i := 0; i < inputs; i++ {
		pool = append(pool, b.Input(""))
	}
	types := []logic.GateType{logic.And, logic.Or, logic.Nand, logic.Xor, logic.Not}
	for i := 0; i < 6+r.Intn(6); i++ {
		gt := types[r.Intn(len(types))]
		nin := gt.MinInputs()
		ins := make([]NetID, nin)
		for j := range ins {
			ins[j] = pool[r.Intn(len(pool))]
		}
		pool = append(pool, b.Gate(gt, "", ins...))
	}
	// Two wired nets fed by fresh gates over existing pool nets.
	for wi := 0; wi < 2; wi++ {
		w := b.Net("")
		k := 2 + r.Intn(2)
		for d := 0; d < k; d++ {
			b.GateInto(logic.And, w, pool[r.Intn(len(pool))], pool[r.Intn(len(pool))])
		}
		if r.Intn(2) == 0 {
			b.Wired(w, WiredAnd)
		} else {
			b.Wired(w, WiredOr)
		}
		pool = append(pool, w)
	}
	out := b.Gate(logic.Or, "OUT", pool[len(pool)-1], pool[len(pool)-2])
	b.Output(out)
	return b.MustBuild(), inputs
}

// evalRef evaluates any circuit (wired or not) by topological sweep with
// wired resolution — an independent model of Normalize's semantics.
func evalRef(t *testing.T, c *Circuit, in []bool) []bool {
	t.Helper()
	order, err := c.TopoGates()
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]bool, c.NumNets())
	for i, id := range c.Inputs {
		vals[id] = in[i]
	}
	pending := make(map[NetID][]bool)
	for _, gid := range order {
		g := c.Gate(gid)
		ins := make([]bool, len(g.Inputs))
		for j, x := range g.Inputs {
			ins[j] = vals[x]
		}
		v := g.Type.EvalBool(ins)
		n := c.Net(g.Output)
		if len(n.Drivers) > 1 {
			pending[n.ID] = append(pending[n.ID], v)
			if len(pending[n.ID]) == len(n.Drivers) {
				acc := pending[n.ID][0]
				for _, x := range pending[n.ID][1:] {
					if n.Wired == WiredOr {
						acc = acc || x
					} else {
						acc = acc && x
					}
				}
				vals[n.ID] = acc
			}
		} else {
			vals[n.ID] = v
		}
	}
	return vals
}

// TestNormalizePreservesFunction: for random wired circuits and random
// inputs, the normalized circuit computes the same value on every
// original net.
func TestNormalizePreservesFunction(t *testing.T) {
	f := func(seed int64, inBits uint16) bool {
		c, nin := buildWiredRandom(seed)
		n := c.Normalize()
		in := make([]bool, nin)
		for i := range in {
			in[i] = inBits>>uint(i)&1 == 1
		}
		vw := evalRef(t, c, in)
		vn := evalRef(t, n, in)
		for i := range c.Nets { // original nets keep their IDs
			if vw[i] != vn[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestNormalizeStructuralInvariants: normalization never changes net
// count prefixes, IDs, or I/O sets, and always removes wired nets.
func TestNormalizeStructuralInvariants(t *testing.T) {
	f := func(seed int64) bool {
		c, _ := buildWiredRandom(seed)
		n := c.Normalize()
		if n.HasWiredNets() {
			return false
		}
		if len(n.Inputs) != len(c.Inputs) || len(n.Outputs) != len(c.Outputs) {
			return false
		}
		for i := range c.Nets {
			if n.Nets[i].Name != c.Nets[i].Name {
				return false
			}
		}
		return n.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
