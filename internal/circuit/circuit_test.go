package circuit

import (
	"strings"
	"testing"

	"udsim/internal/logic"
)

// buildFig1 builds the paper's Fig. 1 circuit: D = A & B; E = C & D.
func buildFig1(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder("fig1")
	a := b.Input("A")
	bb := b.Input("B")
	c := b.Input("C")
	d := b.Gate(logic.And, "D", a, bb)
	e := b.Gate(logic.And, "E", c, d)
	b.Output(e)
	return b.MustBuild()
}

func TestBuilderBasic(t *testing.T) {
	c := buildFig1(t)
	if c.NumNets() != 5 || c.NumGates() != 2 {
		t.Fatalf("got %d nets, %d gates; want 5, 2", c.NumNets(), c.NumGates())
	}
	if len(c.Inputs) != 3 || len(c.Outputs) != 1 {
		t.Fatalf("got %d inputs, %d outputs", len(c.Inputs), len(c.Outputs))
	}
	d, ok := c.NetByName("D")
	if !ok {
		t.Fatal("net D missing")
	}
	if len(c.Net(d).Drivers) != 1 || len(c.Net(d).Fanout) != 1 {
		t.Errorf("net D drivers/fanout wrong: %+v", c.Net(d))
	}
	if !c.Combinational() {
		t.Error("expected combinational")
	}
	if s := c.String(); !strings.Contains(s, "fig1") {
		t.Errorf("String() = %q", s)
	}
}

func TestTopoGatesOrder(t *testing.T) {
	c := buildFig1(t)
	order, err := c.TopoGates()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 {
		t.Fatalf("topo order has %d gates", len(order))
	}
	// The AND driving D must precede the AND driving E.
	pos := make(map[GateID]int)
	for i, g := range order {
		pos[g] = i
	}
	d, _ := c.NetByName("D")
	e, _ := c.NetByName("E")
	if pos[c.Net(d).Drivers[0]] >= pos[c.Net(e).Drivers[0]] {
		t.Error("driver of D must come before driver of E")
	}
}

func TestDuplicateNetName(t *testing.T) {
	b := NewBuilder("dup")
	b.Input("A")
	b.Input("A")
	if _, err := b.Build(); err == nil {
		t.Fatal("expected duplicate-name error")
	}
}

func TestValidateFaninBounds(t *testing.T) {
	b := NewBuilder("bad")
	a := b.Input("A")
	b.Gate(logic.And, "O", a) // AND with one input
	if _, err := b.Build(); err == nil {
		t.Fatal("expected fanin error")
	}
}

func TestValidateUndrivenNet(t *testing.T) {
	b := NewBuilder("undriven")
	a := b.Input("A")
	floating := b.Net("F")
	o := b.Gate(logic.And, "O", a, floating)
	b.Output(o)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected undriven-net error")
	}
}

func TestValidateCycle(t *testing.T) {
	b := NewBuilder("cycle")
	a := b.Input("A")
	x := b.Net("X")
	y := b.Gate(logic.And, "Y", a, x)
	b.GateInto(logic.And, x, a, y)
	b.Output(y)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestWiredNetNeedsResolution(t *testing.T) {
	b := NewBuilder("wired-bad")
	a := b.Input("A")
	bb := b.Input("B")
	w := b.Net("W")
	b.GateInto(logic.Buf, w, a)
	b.GateInto(logic.Buf, w, bb)
	b.Output(w)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected wired resolution error")
	}
}

func buildWired(t *testing.T, op WiredOp) *Circuit {
	t.Helper()
	b := NewBuilder("wired")
	a := b.Input("A")
	bb := b.Input("B")
	cc := b.Input("C")
	w := b.Net("W")
	b.GateInto(logic.And, w, a, bb)
	b.GateInto(logic.And, w, bb, cc)
	b.Wired(w, op)
	o := b.Gate(logic.Not, "O", w)
	b.Output(o)
	return b.MustBuild()
}

func TestNormalizeWired(t *testing.T) {
	for _, op := range []WiredOp{WiredAnd, WiredOr} {
		c := buildWired(t, op)
		if !c.HasWiredNets() {
			t.Fatal("expected wired nets")
		}
		n := c.Normalize()
		if n == c {
			t.Fatal("Normalize should return a new circuit")
		}
		if n.HasWiredNets() {
			t.Fatal("normalized circuit still has wired nets")
		}
		if err := n.Validate(); err != nil {
			t.Fatal(err)
		}
		// Original W net must now be driven by a single resolution gate
		// of the right type.
		w, ok := n.NetByName("W")
		if !ok {
			t.Fatal("net W lost")
		}
		drv := n.Net(w).Drivers
		if len(drv) != 1 {
			t.Fatalf("net W has %d drivers after normalize", len(drv))
		}
		wantType := logic.And
		if op == WiredOr {
			wantType = logic.Or
		}
		if gt := n.Gate(drv[0]).Type; gt != wantType {
			t.Errorf("resolution gate type %v, want %v", gt, wantType)
		}
		// Gate count: 3 original + 1 resolution.
		if n.NumGates() != 4 {
			t.Errorf("normalized gate count %d, want 4", n.NumGates())
		}
	}
}

func TestNormalizeNoopWithoutWired(t *testing.T) {
	c := buildFig1(t)
	if c.Normalize() != c {
		t.Error("Normalize should be identity on wired-free circuits")
	}
}

func TestFlipFlopBreaking(t *testing.T) {
	// 1-bit toggler: Q' = NOT Q, out = Q.
	b := NewBuilder("toggle")
	q := b.FlipFlop("Q", NoNet) // placeholder D fixed below
	nq := b.Gate(logic.Not, "NQ", q)
	b.ffs[0].D = nq
	b.Output(q)
	c := b.MustBuild()
	if c.Combinational() {
		t.Fatal("expected sequential circuit")
	}

	comb, ffs := c.BreakFlipFlops()
	if len(ffs) != 1 {
		t.Fatalf("got %d flip-flops", len(ffs))
	}
	if !comb.Nets[ffs[0].Q].IsInput {
		t.Error("Q must become a primary input")
	}
	if !comb.Nets[ffs[0].D].IsOutput {
		t.Error("D must become a primary output")
	}
	if err := comb.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := comb.TopoGates(); err != nil {
		t.Fatal(err)
	}
	// Original circuit must not be mutated.
	if c.Nets[ffs[0].Q].IsInput {
		t.Error("BreakFlipFlops mutated the original circuit")
	}
}

func TestSequentialCycleThroughFFIsLegal(t *testing.T) {
	// A cycle through a flip-flop must validate (the paper's §1 rule).
	b := NewBuilder("seqcycle")
	a := b.Input("A")
	q := b.FlipFlop("Q", NoNet)
	d := b.Gate(logic.Xor, "D", a, q)
	b.ffs[0].D = d
	b.Output(d)
	if _, err := b.Build(); err != nil {
		t.Fatalf("sequential cycle should be legal: %v", err)
	}
}

func TestInputIndex(t *testing.T) {
	c := buildFig1(t)
	idx := c.InputIndex()
	for i, id := range c.Inputs {
		if idx[id] != i {
			t.Errorf("InputIndex[%d] = %d, want %d", id, idx[id], i)
		}
	}
}

func TestRepeatedInputPinMultiplicity(t *testing.T) {
	// A net wired to two pins of the same gate must appear twice in the
	// fanout list (the PC-set count algorithm depends on this).
	b := NewBuilder("repeat")
	a := b.Input("A")
	o := b.Gate(logic.Xor, "O", a, a)
	b.Output(o)
	c := b.MustBuild()
	aNet, _ := c.NetByName("A")
	if got := len(c.Net(aNet).Fanout); got != 2 {
		t.Errorf("fanout multiplicity %d, want 2", got)
	}
}

func TestSortedNetNames(t *testing.T) {
	c := buildFig1(t)
	names := c.SortedNetNames()
	want := []string{"A", "B", "C", "D", "E"}
	if len(names) != len(want) {
		t.Fatalf("got %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("got %v, want %v", names, want)
		}
	}
}

func TestAnonymousNetNames(t *testing.T) {
	b := NewBuilder("anon")
	a := b.Input("A")
	x := b.Gate(logic.Not, "", a)
	y := b.Gate(logic.Not, "", x)
	b.Output(y)
	c := b.MustBuild()
	if c.Nets[x].Name == c.Nets[y].Name {
		t.Error("anonymous names must be unique")
	}
}
