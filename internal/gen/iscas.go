package gen

import (
	"fmt"

	"udsim/internal/circuit"
)

// Profile records the published shape of one ISCAS-85 benchmark: the
// quantities the paper's experiments depend on. Gate and level counts
// come from the paper itself (Fig. 21 column 1 is the gate count; Fig. 20
// column 1 the level count); input/output counts from the benchmark
// distribution.
type Profile struct {
	Name    string
	Inputs  int
	Outputs int
	Gates   int
	Levels  int
	// SpreadBias tunes reconvergence for the layered generator; c2670's
	// low value reproduces the paper's "unusually small PC-sets" remark.
	SpreadBias float64
	// Kind selects the generator: "layered", "sec", "sec-nand", "mul16".
	Kind string
}

// Profiles lists the ten ISCAS-85 benchmarks in the paper's order.
var Profiles = []Profile{
	{Name: "c432", Inputs: 36, Outputs: 7, Gates: 160, Levels: 18, SpreadBias: 0.35, Kind: "layered"},
	{Name: "c499", Inputs: 41, Outputs: 32, Gates: 202, Levels: 12, SpreadBias: 0.30, Kind: "sec"},
	{Name: "c880", Inputs: 60, Outputs: 26, Gates: 383, Levels: 25, SpreadBias: 0.25, Kind: "layered"},
	{Name: "c1355", Inputs: 41, Outputs: 32, Gates: 546, Levels: 25, SpreadBias: 0.30, Kind: "sec-nand"},
	{Name: "c1908", Inputs: 33, Outputs: 25, Gates: 880, Levels: 41, SpreadBias: 0.30, Kind: "layered"},
	{Name: "c2670", Inputs: 233, Outputs: 140, Gates: 1269, Levels: 33, SpreadBias: 0.04, Kind: "layered"},
	{Name: "c3540", Inputs: 50, Outputs: 22, Gates: 1669, Levels: 48, SpreadBias: 0.30, Kind: "layered"},
	{Name: "c5315", Inputs: 178, Outputs: 123, Gates: 2307, Levels: 50, SpreadBias: 0.20, Kind: "layered"},
	{Name: "c6288", Inputs: 32, Outputs: 32, Gates: 2416, Levels: 125, SpreadBias: 0, Kind: "mul16"},
	{Name: "c7552", Inputs: 207, Outputs: 108, Gates: 3513, Levels: 44, SpreadBias: 0.20, Kind: "layered"},
}

// ProfileByName returns the profile for one benchmark name.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Names returns the benchmark names in the paper's order.
func Names() []string {
	out := make([]string, len(Profiles))
	for i, p := range Profiles {
		out[i] = p.Name
	}
	return out
}

// ISCAS85 synthesizes the named benchmark's profile circuit. Generation
// is deterministic: the same name always yields the same circuit.
func ISCAS85(name string) (*circuit.Circuit, error) {
	p, ok := ProfileByName(name)
	if !ok {
		return nil, fmt.Errorf("gen: unknown ISCAS-85 benchmark %q (have %v)", name, Names())
	}
	var c *circuit.Circuit
	switch p.Kind {
	case "mul16":
		c = Multiplier(16, true)
	case "sec":
		c = SEC(32, 9, false)
	case "sec-nand":
		c = SEC(32, 9, true)
	default:
		c = Layered(LayeredConfig{
			Name:       p.Name,
			Seed:       seedFor(p.Name),
			Gates:      p.Gates,
			Levels:     p.Levels,
			Inputs:     p.Inputs,
			Outputs:    p.Outputs,
			SpreadBias: p.SpreadBias,
		})
	}
	c.Name = p.Name
	return c, nil
}

// AllISCAS85 synthesizes every benchmark, in the paper's order.
func AllISCAS85() ([]*circuit.Circuit, error) {
	out := make([]*circuit.Circuit, 0, len(Profiles))
	for _, n := range Names() {
		c, err := ISCAS85(n)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// seedFor derives a stable seed from a benchmark name.
func seedFor(name string) int64 {
	var h int64 = 1469598103934665603
	for _, r := range name {
		h ^= int64(r)
		h *= 1099511628211
	}
	return h
}
