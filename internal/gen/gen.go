// Package gen generates the benchmark circuits used by the experiments.
//
// The paper evaluates on the ISCAS-85 netlists, which are not bundled
// here; instead this package synthesizes circuits that match each
// benchmark's published profile — gate count, level count (depth+1),
// primary input and output counts, and gate-type mix — which are the
// quantities every experiment in the paper depends on (instruction
// counts, PC-set sizes, words per bit-field, retained shifts, event
// activity). Two benchmarks get structurally authentic generators:
//
//   - c6288 is a 16×16 array multiplier; Multiplier builds a real one
//     from the classic 9-NOR-gate full-adder cell, landing within a few
//     percent of the published 2416 gates and 125 levels (actual multiply
//     behaviour included — the examples verify products).
//   - c499/c1355 are a 32-bit single-error-correction circuit and its
//     NAND expansion; SEC builds a syndrome/correct network with the
//     same XOR-dominated structure.
//
// Everything else uses Layered, a seeded layered-DAG generator with exact
// gate and level counts. All generators are deterministic.
package gen

import (
	"fmt"
	"math/rand"

	"udsim/internal/circuit"
	"udsim/internal/logic"
)

// Multiplier builds an n×n array multiplier: inputs a0..a(n-1) and
// b0..b(n-1), outputs p0..p(2n-1). When norCells is true the adders use
// the authentic c6288-style 9-NOR full-adder cell; otherwise a compact
// XOR/AND/OR cell is used.
func Multiplier(n int, norCells bool) *circuit.Circuit {
	if n < 2 {
		panic("gen: multiplier width must be at least 2")
	}
	style := "xor"
	if norCells {
		style = "nor"
	}
	b := circuit.NewBuilder(fmt.Sprintf("mul%dx%d-%s", n, n, style))
	a := make([]circuit.NetID, n)
	bb := make([]circuit.NetID, n)
	for i := 0; i < n; i++ {
		a[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		bb[i] = b.Input(fmt.Sprintf("b%d", i))
	}

	// xnor4 builds XNOR(x,y) from four NOR gates (the c6288 cell block).
	xnor4 := func(x, y circuit.NetID, tag string) (xnor, norXY circuit.NetID) {
		n1 := b.Gate(logic.Nor, tag+".n1", x, y)
		n2 := b.Gate(logic.Nor, tag+".n2", x, n1)
		n3 := b.Gate(logic.Nor, tag+".n3", y, n1)
		n4 := b.Gate(logic.Nor, tag+".n4", n2, n3)
		return n4, n1
	}
	// fullAdder returns (sum, carry) of x+y+cin.
	var faCount int
	fullAdder := func(x, y, cin circuit.NetID) (sum, cout circuit.NetID) {
		faCount++
		tag := fmt.Sprintf("fa%d", faCount)
		if norCells {
			// 9-NOR cell: sum = XNOR(XNOR(x,y), cin); the carry is
			// NOR(NOR(x,y), NOR(XNOR(x,y), cin)).
			n4, n1 := xnor4(x, y, tag+".h1")
			sum, m1 := xnor4(n4, cin, tag+".h2")
			cout = b.Gate(logic.Nor, tag+".c", n1, m1)
			return sum, cout
		}
		s1 := b.Gate(logic.Xor, tag+".s1", x, y)
		sum = b.Gate(logic.Xor, tag+".s", s1, cin)
		c1 := b.Gate(logic.And, tag+".c1", x, y)
		c2 := b.Gate(logic.And, tag+".c2", s1, cin)
		cout = b.Gate(logic.Or, tag+".c", c1, c2)
		return sum, cout
	}
	halfAdder := func(x, y circuit.NetID) (sum, cout circuit.NetID) {
		faCount++
		tag := fmt.Sprintf("ha%d", faCount)
		sum = b.Gate(logic.Xor, tag+".s", x, y)
		cout = b.Gate(logic.And, tag+".c", x, y)
		return sum, cout
	}

	// Partial products.
	pp := make([][]circuit.NetID, n)
	for i := 0; i < n; i++ {
		pp[i] = make([]circuit.NetID, n)
		for j := 0; j < n; j++ {
			pp[i][j] = b.Gate(logic.And, fmt.Sprintf("pp%d_%d", i, j), a[j], bb[i])
		}
	}

	outs := make([]circuit.NetID, 2*n)
	// Carry-save reduction, row by row: sum[j] accumulates the partial
	// sums aligned at bit position i+j; carries ripple into the next
	// column of the same accumulation row (classic array multiplier).
	sum := make([]circuit.NetID, n) // current row's aligned sums for columns i..i+n-1
	copy(sum, pp[0])
	outs[0] = sum[0]
	carries := make([]circuit.NetID, 0, n)
	for i := 1; i < n; i++ {
		nextSum := make([]circuit.NetID, n)
		nextCarries := make([]circuit.NetID, 0, n)
		for j := 0; j < n; j++ {
			// Column i+j gathers pp[i][j], the previous row's sum for
			// this column (sum[j+1], if any), and the previous row's
			// carry for this column (carries[j], if any).
			terms := []circuit.NetID{pp[i][j]}
			if j+1 < n {
				terms = append(terms, sum[j+1])
			}
			if j < len(carries) {
				terms = append(terms, carries[j])
			}
			switch len(terms) {
			case 1:
				nextSum[j] = terms[0]
			case 2:
				s, c := halfAdder(terms[0], terms[1])
				nextSum[j] = s
				nextCarries = append(nextCarries, c)
			default:
				s, c := fullAdder(terms[0], terms[1], terms[2])
				nextSum[j] = s
				nextCarries = append(nextCarries, c)
			}
		}
		sum = nextSum
		carries = nextCarries
		outs[i] = sum[0]
	}
	// Final adder: remaining sums (columns n..2n-2) plus carries ripple.
	var carry circuit.NetID = circuit.NoNet
	for j := 1; j < n; j++ {
		var s circuit.NetID
		terms := []circuit.NetID{sum[j]}
		if j-1 < len(carries) {
			terms = append(terms, carries[j-1])
		}
		if carry != circuit.NoNet {
			terms = append(terms, carry)
		}
		switch len(terms) {
		case 1:
			s, carry = terms[0], circuit.NoNet
		case 2:
			s, carry = halfAdder(terms[0], terms[1])
		default:
			s, carry = fullAdder(terms[0], terms[1], terms[2])
		}
		outs[n+j-1] = s
	}
	if carry != circuit.NoNet {
		outs[2*n-1] = carry
	} else {
		outs[2*n-1] = b.Gate(logic.Const0, "p_top_zero")
	}
	for i, o := range outs {
		po := b.Gate(logic.Buf, fmt.Sprintf("p%d", i), o)
		b.Output(po)
	}
	return b.MustBuild()
}

// RippleAdder builds an n-bit ripple-carry adder: inputs a0.., b0.., cin;
// outputs s0..s(n-1), cout. Its depth grows linearly with n, which makes
// it a convenient deep-and-narrow stress circuit.
func RippleAdder(n int) *circuit.Circuit {
	b := circuit.NewBuilder(fmt.Sprintf("add%d", n))
	a := make([]circuit.NetID, n)
	bb := make([]circuit.NetID, n)
	for i := 0; i < n; i++ {
		a[i] = b.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		bb[i] = b.Input(fmt.Sprintf("b%d", i))
	}
	carry := b.Input("cin")
	for i := 0; i < n; i++ {
		s1 := b.Gate(logic.Xor, fmt.Sprintf("x%d", i), a[i], bb[i])
		s := b.Gate(logic.Xor, fmt.Sprintf("s%d", i), s1, carry)
		c1 := b.Gate(logic.And, fmt.Sprintf("c1_%d", i), a[i], bb[i])
		c2 := b.Gate(logic.And, fmt.Sprintf("c2_%d", i), s1, carry)
		carry = b.Gate(logic.Or, fmt.Sprintf("c%d", i), c1, c2)
		b.Output(s)
	}
	cout := b.Gate(logic.Buf, "cout", carry)
	b.Output(cout)
	return b.MustBuild()
}

// SEC builds a single-error-correction style circuit in the mould of
// c499: data and check inputs, syndrome parity trees, a decode stage and
// an output correction stage. expandXor replaces every 2-input XOR with
// its four-NAND expansion, the transformation that turns c499 into c1355.
func SEC(data, check int, expandXor bool) *circuit.Circuit {
	name := "sec"
	if expandXor {
		name = "sec-nand"
	}
	b := circuit.NewBuilder(fmt.Sprintf("%s%d+%d", name, data, check))
	xor2 := func(tag string, x, y circuit.NetID) circuit.NetID {
		if !expandXor {
			return b.Gate(logic.Xor, tag, x, y)
		}
		n1 := b.Gate(logic.Nand, tag+".1", x, y)
		n2 := b.Gate(logic.Nand, tag+".2", x, n1)
		n3 := b.Gate(logic.Nand, tag+".3", y, n1)
		return b.Gate(logic.Nand, tag, n2, n3)
	}
	d := make([]circuit.NetID, data)
	for i := range d {
		d[i] = b.Input(fmt.Sprintf("d%d", i))
	}
	p := make([]circuit.NetID, check)
	for i := range p {
		p[i] = b.Input(fmt.Sprintf("p%d", i))
	}
	// Syndrome bit j is the parity of the check bit and a Hamming-style
	// cover of roughly 3/8 of the data bits. The reduction combines
	// adjacent pairs once and then chains, matching the original's depth
	// profile (c499 ≈ 12 levels; the NAND expansion ≈ 25).
	synd := make([]circuit.NetID, check)
	for j := 0; j < check; j++ {
		var leaves []circuit.NetID
		for i := 0; i < data; i++ {
			if (i+j*5)%8 < 3 {
				leaves = append(leaves, d[i])
			}
		}
		var stage []circuit.NetID
		for k := 0; k+1 < len(leaves); k += 2 {
			stage = append(stage, xor2(fmt.Sprintf("s%d_p%d", j, k/2), leaves[k], leaves[k+1]))
		}
		if len(leaves)%2 == 1 {
			stage = append(stage, leaves[len(leaves)-1])
		}
		cur := p[j]
		for k, s := range stage {
			cur = xor2(fmt.Sprintf("s%d_c%d", j, k), cur, s)
		}
		synd[j] = cur
	}
	// Decode/correct: output i flips data bit i when the syndrome
	// matches i's cover pattern (approximated with a two-level and/or of
	// syndrome lines).
	nsynd := make([]circuit.NetID, check)
	for j := range synd {
		nsynd[j] = b.Gate(logic.Not, fmt.Sprintf("ns%d", j), synd[j])
	}
	for i := 0; i < data; i++ {
		t1 := synd[i%check]
		t2 := nsynd[(i+1)%check]
		t3 := synd[(i+2)%check]
		flip := b.Gate(logic.And, fmt.Sprintf("flip%d", i), t1, t2, t3)
		out := xor2(fmt.Sprintf("o%d", i), d[i], flip)
		o := b.Gate(logic.Buf, fmt.Sprintf("out%d", i), out)
		b.Output(o)
	}
	return b.MustBuild()
}

// Counter builds an n-bit synchronous binary counter with an enable
// input: the sequential example circuit. Q(i) toggles when enable and all
// lower bits are one.
func Counter(n int) *circuit.Circuit {
	b := circuit.NewBuilder(fmt.Sprintf("counter%d", n))
	en := b.Input("en")
	qs := make([]circuit.NetID, n)
	for i := 0; i < n; i++ {
		qs[i] = b.FlipFlop(fmt.Sprintf("q%d", i), circuit.NoNet)
	}
	carry := en
	for i := 0; i < n; i++ {
		d := b.Gate(logic.Xor, fmt.Sprintf("d%d", i), qs[i], carry)
		b.BindFlipFlop(qs[i], d)
		b.Output(qs[i])
		if i < n-1 {
			carry = b.Gate(logic.And, fmt.Sprintf("ca%d", i), carry, qs[i])
		}
	}
	return b.MustBuild()
}

// LFSR builds an n-bit Fibonacci linear-feedback shift register with the
// given tap positions (0-indexed; the feedback XORs the tapped bits). A
// "run" input gates the feedback so the register holds when low. With
// maximal-length taps (e.g. 16-bit: 15,14,12,3) the state sequence has
// period 2^n − 1.
func LFSR(n int, taps []int) *circuit.Circuit {
	if n < 2 || len(taps) < 2 {
		panic("gen: LFSR needs width ≥ 2 and ≥ 2 taps")
	}
	b := circuit.NewBuilder(fmt.Sprintf("lfsr%d", n))
	run := b.Input("run")
	qs := make([]circuit.NetID, n)
	for i := range qs {
		qs[i] = b.FlipFlop(fmt.Sprintf("q%d", i), circuit.NoNet)
	}
	fb := qs[taps[0]]
	for i, tp := range taps[1:] {
		if tp < 0 || tp >= n {
			panic("gen: LFSR tap out of range")
		}
		fb = b.Gate(logic.Xor, fmt.Sprintf("t%d", i), fb, qs[tp])
	}
	hold := b.Gate(logic.And, "hold", fb, run)
	b.BindFlipFlop(qs[0], hold)
	for i := 1; i < n; i++ {
		d := b.Gate(logic.Buf, fmt.Sprintf("d%d", i), qs[i-1])
		b.BindFlipFlop(qs[i], d)
	}
	b.Output(qs[n-1])
	return b.MustBuild()
}

// RandomSequential builds a random synchronous machine: a layered random
// combinational core whose deepest nets feed nff flip-flops that loop
// back as extra inputs. Useful for cross-engine sequential testing.
func RandomSequential(seed int64, gates, inputs, nff int) *circuit.Circuit {
	r := rand.New(rand.NewSource(seed))
	b := circuit.NewBuilder(fmt.Sprintf("seq%d", seed))
	pis := make([]circuit.NetID, inputs)
	for i := range pis {
		pis[i] = b.Input(fmt.Sprintf("i%d", i))
	}
	qs := make([]circuit.NetID, nff)
	for i := range qs {
		qs[i] = b.FlipFlop(fmt.Sprintf("q%d", i), circuit.NoNet)
	}
	pool := append(append([]circuit.NetID(nil), pis...), qs...)
	types := []logic.GateType{logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Not}
	for g := 0; g < gates; g++ {
		gt := types[r.Intn(len(types))]
		nin := gt.MinInputs()
		if gt.MaxInputs() == -1 && r.Intn(3) == 0 {
			nin++
		}
		ins := make([]circuit.NetID, nin)
		for j := range ins {
			// Bias toward recent nets for depth.
			lo := 0
			if r.Intn(2) == 0 && len(pool) > inputs+nff {
				lo = len(pool) * 2 / 3
			}
			ins[j] = pool[lo+r.Intn(len(pool)-lo)]
		}
		pool = append(pool, b.Gate(gt, fmt.Sprintf("g%d", g), ins...))
	}
	for i := range qs {
		b.BindFlipFlop(qs[i], pool[len(pool)-1-i%min(gates, 7)])
	}
	b.Output(pool[len(pool)-1])
	return b.MustBuild()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// LayeredConfig parameterizes the layered random DAG generator.
type LayeredConfig struct {
	Name    string
	Seed    int64
	Gates   int // exact gate count
	Levels  int // exact level count (depth = Levels-1)
	Inputs  int
	Outputs int // approximate: every sink becomes an output
	// SpreadBias in [0,1] is the probability that a non-chain input is
	// drawn from a distant earlier level instead of a recent one. Higher
	// values produce larger PC-sets (more reconvergence over unequal
	// path lengths).
	SpreadBias float64
}

// Layered builds a random layered DAG with exactly cfg.Gates gates and
// cfg.Levels levels. Every level 1..Levels-1 contains at least one gate
// whose longest path is exactly that level, every primary input is
// consumed, and every sink net is a primary output.
func Layered(cfg LayeredConfig) *circuit.Circuit {
	if cfg.Levels < 2 {
		panic("gen: need at least 2 levels")
	}
	depth := cfg.Levels - 1
	if cfg.Gates < depth {
		panic("gen: gate count below level count")
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	b := circuit.NewBuilder(cfg.Name)

	pis := make([]circuit.NetID, cfg.Inputs)
	for i := range pis {
		pis[i] = b.Input(fmt.Sprintf("i%d", i))
	}

	// Apportion gates to levels 1..depth: one guaranteed per level, the
	// rest weighted toward shallow levels (real circuits are wide near
	// their inputs).
	counts := make([]int, depth+1)
	for l := 1; l <= depth; l++ {
		counts[l] = 1
	}
	remaining := cfg.Gates - depth
	weights := make([]float64, depth+1)
	totalW := 0.0
	for l := 1; l <= depth; l++ {
		weights[l] = float64(depth-l) + 2
		totalW += weights[l]
	}
	assigned := 0
	for l := 1; l <= depth; l++ {
		share := int(float64(remaining) * weights[l] / totalW)
		counts[l] += share
		assigned += share
	}
	for i := 0; assigned < remaining; i++ {
		counts[1+i%depth]++
		assigned++
	}

	byLevel := make([][]circuit.NetID, depth+1)
	byLevel[0] = pis
	var unconsumed []circuit.NetID
	unconsumed = append(unconsumed, pis...)
	consumed := make(map[circuit.NetID]bool)
	allBelow := append([]circuit.NetID(nil), pis...)

	types := []logic.GateType{
		logic.Nand, logic.Nand, logic.Nand, logic.And, logic.And,
		logic.Nor, logic.Or, logic.Or, logic.Xor, logic.Not, logic.Buf,
	}
	use := func(id circuit.NetID) {
		if !consumed[id] {
			consumed[id] = true
		}
	}
	pickEarlier := func(l int) circuit.NetID {
		// Prefer a recently created unconsumed net: real netlists
		// reconverge over short windows, and short spans keep PC-sets
		// realistic (long-range reconvergence multiplies them).
		for tries := 0; tries < 4 && len(unconsumed) > 0; tries++ {
			// Drain the queue from the front (oldest first) so primary
			// inputs are absorbed by the shallow levels and nothing is
			// stranded, within a small window for variety.
			w := len(unconsumed)
			if w > 24 {
				w = 24
			}
			i := r.Intn(w)
			id := unconsumed[i]
			unconsumed = append(unconsumed[:i], unconsumed[i+1:]...)
			if !consumed[id] {
				return id
			}
		}
		if r.Float64() < cfg.SpreadBias {
			if r.Intn(64) == 0 {
				// Rare long-range reconvergence.
				return allBelow[r.Intn(len(allBelow))]
			}
			lo := max(0, l-12)
			pool := byLevel[lo+r.Intn(l-lo)]
			for len(pool) == 0 {
				pool = byLevel[r.Intn(l)]
			}
			return pool[r.Intn(len(pool))]
		}
		// Recent bias: draw from the last few levels.
		lo := max(0, l-3)
		pool := byLevel[lo+r.Intn(l-lo)]
		for len(pool) == 0 {
			pool = byLevel[r.Intn(l)]
		}
		return pool[r.Intn(len(pool))]
	}

	gid := 0
	for l := 1; l <= depth; l++ {
		if len(byLevel[l-1]) == 0 {
			panic("gen: empty previous level")
		}
		// New nets join the candidate pools only after the whole level is
		// generated, so no gate ever consumes a same-level net and every
		// gate's longest path is exactly its level.
		for k := 0; k < counts[l]; k++ {
			gt := types[r.Intn(len(types))]
			fanin := 2
			switch {
			case gt == logic.Not || gt == logic.Buf:
				fanin = 1
			case r.Float64() < 0.15:
				fanin = 3
			case r.Float64() < 0.04:
				fanin = 4
			}
			ins := make([]circuit.NetID, 0, fanin)
			chain := byLevel[l-1][r.Intn(len(byLevel[l-1]))]
			ins = append(ins, chain)
			use(chain)
			for len(ins) < fanin {
				id := pickEarlier(l)
				ins = append(ins, id)
				use(id)
			}
			out := b.Gate(gt, fmt.Sprintf("n%d_%d", l, gid), ins...)
			gid++
			byLevel[l] = append(byLevel[l], out)
		}
		allBelow = append(allBelow, byLevel[l]...)
		unconsumed = append(unconsumed, byLevel[l]...)
	}

	// Sinks become primary outputs; if the profile wants more outputs
	// than there are sinks, deep internal nets are also monitored (real
	// primary outputs frequently have internal fanout too).
	return markOutputs(b.MustBuild(), cfg.Outputs, r)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// markOutputs returns a circuit identical to c with every sink net marked
// as a primary output, plus enough deep internal nets to reach the target
// output count.
func markOutputs(c *circuit.Circuit, target int, r *rand.Rand) *circuit.Circuit {
	nc := *c
	nc.Nets = append([]circuit.Net(nil), c.Nets...)
	nc.Outputs = nil
	for i := range nc.Nets {
		nc.Nets[i].IsOutput = false
	}
	for i := range nc.Nets {
		if len(nc.Nets[i].Fanout) == 0 && !nc.Nets[i].IsInput {
			nc.Nets[i].IsOutput = true
			nc.Outputs = append(nc.Outputs, nc.Nets[i].ID)
		}
	}
	// Top up with internal gate outputs, biased toward deep nets (high
	// IDs were created late, hence deep).
	for i := len(nc.Nets) - 1; i >= 0 && len(nc.Outputs) < target; i-- {
		n := &nc.Nets[i]
		if n.IsInput || n.IsOutput {
			continue
		}
		if r.Intn(3) > 0 { // keep some spread rather than a pure suffix
			n.IsOutput = true
			nc.Outputs = append(nc.Outputs, n.ID)
		}
	}
	return &nc
}
