package gen

import (
	"math/rand"
	"testing"

	"udsim/internal/circuit"
	"udsim/internal/levelize"
	"udsim/internal/refsim"
)

// evalMul drives the multiplier with two operands and decodes the product.
func evalMul(t *testing.T, c *circuit.Circuit, n int, x, y uint64) uint64 {
	t.Helper()
	in := make([]bool, 2*n)
	for i := 0; i < n; i++ {
		in[i] = x>>uint(i)&1 == 1
		in[n+i] = y>>uint(i)&1 == 1
	}
	vals, err := refsim.Evaluate(c, in)
	if err != nil {
		t.Fatal(err)
	}
	var p uint64
	for i := 0; i < 2*n; i++ {
		id, ok := c.NetByName(pName(i))
		if !ok {
			t.Fatalf("output p%d missing", i)
		}
		if vals[id] {
			p |= 1 << uint(i)
		}
	}
	return p
}

func pName(i int) string {
	return "p" + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}

func TestMultiplierCorrect(t *testing.T) {
	for _, norCells := range []bool{false, true} {
		c := Multiplier(4, norCells)
		for x := uint64(0); x < 16; x++ {
			for y := uint64(0); y < 16; y++ {
				if got := evalMul(t, c, 4, x, y); got != x*y {
					t.Fatalf("norCells=%v: %d*%d = %d, want %d", norCells, x, y, got, x*y)
				}
			}
		}
	}
}

func TestMultiplier8Random(t *testing.T) {
	c := Multiplier(8, true)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		x, y := r.Uint64()&0xFF, r.Uint64()&0xFF
		if got := evalMul(t, c, 8, x, y); got != x*y {
			t.Fatalf("%d*%d = %d, want %d", x, y, got, x*y)
		}
	}
}

func TestC6288ProfileShape(t *testing.T) {
	c, err := ISCAS85("c6288")
	if err != nil {
		t.Fatal(err)
	}
	a, err := levelize.Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	// Published profile: 2416 gates, 125 levels, 32/32 I/O. The NOR-cell
	// multiplier must land within 15% on gates and 25% on levels; the
	// point is the paper's shape (deepest circuit, most words per field).
	if g := c.NumGates(); g < 2050 || g > 2800 {
		t.Errorf("c6288 profile gate count %d too far from 2416", g)
	}
	levels := a.Depth + 1
	if levels < 94 || levels > 160 {
		t.Errorf("c6288 profile levels %d too far from 125", levels)
	}
	if len(c.Inputs) != 32 || len(c.Outputs) != 32 {
		t.Errorf("c6288 profile I/O %d/%d, want 32/32", len(c.Inputs), len(c.Outputs))
	}
	t.Logf("c6288 profile: %d gates, %d levels", c.NumGates(), levels)
}

func TestRippleAdderCorrect(t *testing.T) {
	c := RippleAdder(8)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 60; i++ {
		x, y := r.Uint64()&0xFF, r.Uint64()&0xFF
		cin := r.Intn(2)
		in := make([]bool, 17)
		for j := 0; j < 8; j++ {
			in[j] = x>>uint(j)&1 == 1
			in[8+j] = y>>uint(j)&1 == 1
		}
		in[16] = cin == 1
		vals, err := refsim.Evaluate(c, in)
		if err != nil {
			t.Fatal(err)
		}
		var got uint64
		for j := 0; j < 8; j++ {
			id, _ := c.NetByName("s" + itoa(j))
			if vals[id] {
				got |= 1 << uint(j)
			}
		}
		co, _ := c.NetByName("cout")
		if vals[co] {
			got |= 1 << 8
		}
		if want := x + y + uint64(cin); got != want {
			t.Fatalf("%d+%d+%d = %d, want %d", x, y, cin, got, want)
		}
	}
}

func TestSECValidAndXorExpansion(t *testing.T) {
	plain := SEC(32, 9, false)
	if err := plain.Validate(); err != nil {
		t.Fatal(err)
	}
	expanded := SEC(32, 9, true)
	if err := expanded.Validate(); err != nil {
		t.Fatal(err)
	}
	if expanded.NumGates() <= plain.NumGates() {
		t.Errorf("NAND expansion should grow the circuit: %d vs %d",
			expanded.NumGates(), plain.NumGates())
	}
	ap, _ := levelize.Analyze(plain)
	ae, _ := levelize.Analyze(expanded)
	if ae.Depth <= ap.Depth {
		t.Errorf("NAND expansion should deepen the circuit: %d vs %d", ae.Depth, ap.Depth)
	}
	// Identical data in, no syndrome pattern match is not guaranteed, but
	// the two variants must compute the same function: expansion is
	// purely local.
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		in := make([]bool, 41)
		for j := range in {
			in[j] = r.Intn(2) == 1
		}
		v1, err := refsim.Evaluate(plain, in)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := refsim.Evaluate(expanded, in)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range plain.Outputs {
			name := plain.Net(o).Name
			o2, ok := expanded.NetByName(name)
			if !ok {
				t.Fatalf("output %s missing in expanded variant", name)
			}
			if v1[o] != v2[o2] {
				t.Fatalf("variants disagree on %s", name)
			}
		}
	}
}

func TestLayeredExactShape(t *testing.T) {
	for _, cfg := range []LayeredConfig{
		{Name: "t1", Seed: 1, Gates: 100, Levels: 10, Inputs: 12, Outputs: 6, SpreadBias: 0.3},
		{Name: "t2", Seed: 2, Gates: 400, Levels: 30, Inputs: 40, Outputs: 20, SpreadBias: 0.1},
		{Name: "t3", Seed: 3, Gates: 60, Levels: 50, Inputs: 5, Outputs: 2, SpreadBias: 0.5},
	} {
		c := Layered(cfg)
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		if c.NumGates() != cfg.Gates {
			t.Errorf("%s: %d gates, want %d", cfg.Name, c.NumGates(), cfg.Gates)
		}
		a, err := levelize.Analyze(c)
		if err != nil {
			t.Fatal(err)
		}
		if a.Depth+1 != cfg.Levels {
			t.Errorf("%s: %d levels, want %d", cfg.Name, a.Depth+1, cfg.Levels)
		}
		if len(c.Inputs) != cfg.Inputs {
			t.Errorf("%s: %d inputs, want %d", cfg.Name, len(c.Inputs), cfg.Inputs)
		}
		// Every sink must be an output (no dangling logic), and the
		// output count must be topped up toward the target.
		for i := range c.Nets {
			n := &c.Nets[i]
			if !n.IsInput && len(n.Fanout) == 0 && !n.IsOutput {
				t.Errorf("%s: sink net %s is not an output", cfg.Name, n.Name)
			}
		}
		if len(c.Outputs) < cfg.Outputs {
			t.Errorf("%s: %d outputs, want at least %d", cfg.Name, len(c.Outputs), cfg.Outputs)
		}
	}
}

func TestLayeredDeterministic(t *testing.T) {
	cfg := LayeredConfig{Name: "d", Seed: 9, Gates: 200, Levels: 15, Inputs: 20, Outputs: 10, SpreadBias: 0.2}
	a := Layered(cfg)
	b := Layered(cfg)
	if a.NumGates() != b.NumGates() || a.NumNets() != b.NumNets() {
		t.Fatal("same config produced different circuits")
	}
	for i := range a.Gates {
		if a.Gates[i].Type != b.Gates[i].Type || len(a.Gates[i].Inputs) != len(b.Gates[i].Inputs) {
			t.Fatal("same config produced different gates")
		}
		for j := range a.Gates[i].Inputs {
			if a.Gates[i].Inputs[j] != b.Gates[i].Inputs[j] {
				t.Fatal("same config produced different wiring")
			}
		}
	}
}

func TestCounterSequential(t *testing.T) {
	c := Counter(4)
	if len(c.FFs) != 4 {
		t.Fatalf("counter has %d flip-flops, want 4", len(c.FFs))
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	comb, ffs := c.BreakFlipFlops()
	if err := comb.Validate(); err != nil {
		t.Fatal(err)
	}
	// Step the counter by hand through the combinational core: next
	// state = settled D values; count 0,1,2,...
	state := make(map[circuit.NetID]bool, 4)
	for _, ff := range ffs {
		state[ff.Q] = false
	}
	for step := 1; step <= 20; step++ {
		in := make([]bool, len(comb.Inputs))
		for i, id := range comb.Inputs {
			if comb.Net(id).Name == "en" {
				in[i] = true
			} else {
				in[i] = state[id]
			}
		}
		vals, err := refsim.Evaluate(comb, in)
		if err != nil {
			t.Fatal(err)
		}
		for _, ff := range ffs {
			state[ff.Q] = vals[ff.D]
		}
		var got int
		for bit, ff := range ffs {
			if state[ff.Q] {
				got |= 1 << uint(bit)
			}
		}
		if got != step%16 {
			t.Fatalf("after %d steps counter = %d", step, got)
		}
	}
}

func TestISCAS85ProfilesAllBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("profile synthesis is slow-ish")
	}
	ckts, err := AllISCAS85()
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range ckts {
		p := Profiles[i]
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		a, err := levelize.Analyze(c)
		if err != nil {
			t.Fatal(err)
		}
		if p.Kind == "layered" {
			if c.NumGates() != p.Gates {
				t.Errorf("%s: %d gates, want %d", p.Name, c.NumGates(), p.Gates)
			}
			if a.Depth+1 != p.Levels {
				t.Errorf("%s: %d levels, want %d", p.Name, a.Depth+1, p.Levels)
			}
			if len(c.Inputs) != p.Inputs {
				t.Errorf("%s: %d inputs, want %d", p.Name, len(c.Inputs), p.Inputs)
			}
		}
		t.Logf("%-6s %5d gates %4d levels %4d in %4d out (target %d/%d/%d/%d)",
			p.Name, c.NumGates(), a.Depth+1, len(c.Inputs), len(c.Outputs),
			p.Gates, p.Levels, p.Inputs, p.Outputs)
	}
}

func TestLFSRStructure(t *testing.T) {
	c := LFSR(8, []int{7, 5, 4, 3})
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.FFs) != 8 || len(c.Inputs) != 1 {
		t.Fatalf("shape wrong: %s", c)
	}
	comb, _ := c.BreakFlipFlops()
	if _, err := comb.TopoGates(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on bad taps")
		}
	}()
	LFSR(4, []int{0, 9})
}

func TestRandomSequentialShape(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		c := RandomSequential(seed, 30, 4, 6)
		if err := c.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(c.FFs) != 6 || len(c.Inputs) != 4 || c.NumGates() != 30 {
			t.Fatalf("seed %d shape: %s", seed, c)
		}
		comb, ffs := c.BreakFlipFlops()
		if len(ffs) != 6 {
			t.Fatal("flip-flops lost")
		}
		if _, err := comb.TopoGates(); err != nil {
			t.Fatalf("seed %d: broken core cyclic: %v", seed, err)
		}
	}
}

func TestISCAS85Unknown(t *testing.T) {
	if _, err := ISCAS85("c9999"); err == nil {
		t.Error("expected unknown-benchmark error")
	}
}
