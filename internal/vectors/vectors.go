// Package vectors generates and serializes input-vector streams for the
// simulation experiments. The paper drove every circuit with 5 000
// uniformly random vectors; Random reproduces that workload with a seeded
// generator so runs are exactly repeatable.
package vectors

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strings"
)

// Set is an ordered collection of equal-width input vectors.
type Set struct {
	// Width is the number of primary inputs each vector covers.
	Width int
	// Bits holds the vectors; Bits[v][i] is input i of vector v.
	Bits [][]bool
}

// Random generates n uniformly random vectors of the given width from the
// given seed.
func Random(n, width int, seed int64) *Set {
	r := rand.New(rand.NewSource(seed))
	s := &Set{Width: width, Bits: make([][]bool, n)}
	for v := range s.Bits {
		vec := make([]bool, width)
		var w uint64
		for i := range vec {
			if i%64 == 0 {
				w = r.Uint64()
			}
			vec[i] = w&1 == 1
			w >>= 1
		}
		s.Bits[v] = vec
	}
	return s
}

// Exhaustive generates all 2^width vectors in counting order. Width must
// be at most 20 to keep the set bounded.
func Exhaustive(width int) (*Set, error) {
	if width < 0 || width > 20 {
		return nil, fmt.Errorf("vectors: exhaustive width %d out of range [0,20]", width)
	}
	n := 1 << width
	s := &Set{Width: width, Bits: make([][]bool, n)}
	for v := 0; v < n; v++ {
		vec := make([]bool, width)
		for i := range vec {
			vec[i] = v>>i&1 == 1
		}
		s.Bits[v] = vec
	}
	return s, nil
}

// Len returns the number of vectors.
func (s *Set) Len() int { return len(s.Bits) }

// Write serializes the set as one line of '0'/'1' characters per vector.
func (s *Set) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, vec := range s.Bits {
		for _, b := range vec {
			c := byte('0')
			if b {
				c = '1'
			}
			if err := bw.WriteByte(c); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the format produced by Write. Blank lines and lines starting
// with '#' are ignored. All vectors must have equal width.
func Read(r io.Reader) (*Set, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	s := &Set{Width: -1}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		vec := make([]bool, len(line))
		for i := 0; i < len(line); i++ {
			switch line[i] {
			case '0':
			case '1':
				vec[i] = true
			default:
				return nil, fmt.Errorf("vectors: line %d: invalid character %q", lineNo, line[i])
			}
		}
		if s.Width == -1 {
			s.Width = len(vec)
		} else if len(vec) != s.Width {
			return nil, fmt.Errorf("vectors: line %d: width %d, want %d", lineNo, len(vec), s.Width)
		}
		s.Bits = append(s.Bits, vec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if s.Width == -1 {
		s.Width = 0
	}
	return s, nil
}

// Packed returns the vectors transposed into 64-vector lanes for
// data-parallel simulation: result[lane][i] packs vectors lane*64 ..
// lane*64+63 of input i, one vector per bit. The tail lane is padded by
// repeating the final vector, so every lane is full; callers use Len to
// know how many lanes carry real data.
func (s *Set) Packed() [][]uint64 {
	if s.Len() == 0 {
		return nil
	}
	lanes := (s.Len() + 63) / 64
	out := make([][]uint64, lanes)
	for l := 0; l < lanes; l++ {
		words := make([]uint64, s.Width)
		for b := 0; b < 64; b++ {
			v := l*64 + b
			if v >= s.Len() {
				v = s.Len() - 1
			}
			for i, bit := range s.Bits[v] {
				if bit {
					words[i] |= 1 << uint(b)
				}
			}
		}
		out[l] = words
	}
	return out
}
