package vectors

import (
	"bytes"
	"strings"
	"testing"
)

func TestRandomDeterministic(t *testing.T) {
	a := Random(100, 37, 42)
	b := Random(100, 37, 42)
	if a.Len() != 100 || a.Width != 37 {
		t.Fatalf("shape wrong: %d x %d", a.Len(), a.Width)
	}
	for v := range a.Bits {
		for i := range a.Bits[v] {
			if a.Bits[v][i] != b.Bits[v][i] {
				t.Fatal("same seed produced different vectors")
			}
		}
	}
	c := Random(100, 37, 43)
	same := true
	for v := range a.Bits {
		for i := range a.Bits[v] {
			if a.Bits[v][i] != c.Bits[v][i] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical vectors")
	}
}

func TestRandomBalance(t *testing.T) {
	s := Random(2000, 8, 7)
	ones := 0
	for _, vec := range s.Bits {
		for _, b := range vec {
			if b {
				ones++
			}
		}
	}
	total := 2000 * 8
	if ones < total*45/100 || ones > total*55/100 {
		t.Errorf("bit balance off: %d/%d ones", ones, total)
	}
}

func TestExhaustive(t *testing.T) {
	s, err := Exhaustive(3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 8 {
		t.Fatalf("len = %d", s.Len())
	}
	// Vector 5 = 0b101: inputs 0 and 2 set.
	if !s.Bits[5][0] || s.Bits[5][1] || !s.Bits[5][2] {
		t.Errorf("vector 5 = %v", s.Bits[5])
	}
	if _, err := Exhaustive(21); err == nil {
		t.Error("expected error for width 21")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := Random(50, 13, 3)
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() || got.Width != s.Width {
		t.Fatalf("shape changed: %dx%d -> %dx%d", s.Len(), s.Width, got.Len(), got.Width)
	}
	for v := range s.Bits {
		for i := range s.Bits[v] {
			if s.Bits[v][i] != got.Bits[v][i] {
				t.Fatalf("vector %d bit %d changed", v, i)
			}
		}
	}
}

func TestReadCommentsAndErrors(t *testing.T) {
	got, err := Read(strings.NewReader("# comment\n\n010\n111\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Width != 3 {
		t.Fatalf("got %dx%d", got.Len(), got.Width)
	}
	if _, err := Read(strings.NewReader("01\n012\n")); err == nil {
		t.Error("expected invalid-character error")
	}
	if _, err := Read(strings.NewReader("01\n0\n")); err == nil {
		t.Error("expected width-mismatch error")
	}
	empty, err := Read(strings.NewReader(""))
	if err != nil || empty.Len() != 0 {
		t.Errorf("empty read: %v, %d", err, empty.Len())
	}
}

func TestPacked(t *testing.T) {
	s := Random(130, 5, 9)
	lanes := s.Packed()
	if len(lanes) != 3 {
		t.Fatalf("got %d lanes, want 3", len(lanes))
	}
	for l, lane := range lanes {
		if len(lane) != 5 {
			t.Fatalf("lane %d width %d", l, len(lane))
		}
		for b := 0; b < 64; b++ {
			v := l*64 + b
			if v >= s.Len() {
				v = s.Len() - 1 // padding repeats the final vector
			}
			for i := 0; i < s.Width; i++ {
				got := lane[i]>>uint(b)&1 == 1
				if got != s.Bits[v][i] {
					t.Fatalf("lane %d bit %d input %d mismatch", l, b, i)
				}
			}
		}
	}
	if Packed := (&Set{Width: 3}).Packed(); Packed != nil {
		t.Error("empty set should pack to nil")
	}
}
