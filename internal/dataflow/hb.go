package dataflow

import (
	"fmt"

	"udsim/internal/program"
)

// Schedule is a bulk-synchronous shard plan over a simulation program:
// instruction i runs in level Level[i] on shard Shard[i], levels are
// separated by barriers, and shards within a level run concurrently.
// It mirrors verify.ShardAssignment, which package verify converts from
// (verify imports dataflow, not the other way around).
type Schedule struct {
	// Workers is the number of shards per level.
	Workers int
	// Levels is the number of bulk-synchronous levels.
	Levels int
	// Level and Shard give each instruction's assignment; both must have
	// length len(code).
	Level []int32
	// Shard is the per-instruction shard index in [0,Workers).
	Shard []int32
}

// RaceKind classifies a happens-before violation.
type RaceKind int

const (
	// RaceStaleRead: a read is not ordered after the write that produces
	// its value (the write is in a later level, or concurrent).
	RaceStaleRead RaceKind = iota
	// RaceScratchEscape: a scratch value crosses shards. Shards execute
	// scratch in private arenas, so the consumer would read its own
	// arena's stale word, never the producer's value.
	RaceScratchEscape
	// RaceWriteWrite: two writes of one slot are unordered, so the
	// surviving value depends on shard timing.
	RaceWriteWrite
	// RaceWriteOvertakesRead: a write is not ordered after an earlier
	// instruction's read of the old value.
	RaceWriteOvertakesRead
)

// String names the race kind.
func (k RaceKind) String() string {
	switch k {
	case RaceStaleRead:
		return "stale-read"
	case RaceScratchEscape:
		return "scratch-escape"
	case RaceWriteWrite:
		return "write-write"
	case RaceWriteOvertakesRead:
		return "write-after-read"
	}
	return fmt.Sprintf("race(%d)", int(k))
}

// Race is one happens-before violation with its complete witness: the
// two conflicting instruction addresses in sequential stream order, the
// slot they collide on, and both (level, shard) coordinates.
type Race struct {
	Kind RaceKind
	// Slot is the state slot both instructions touch.
	Slot int32
	// First and Second are the conflicting instruction indices in
	// sequential stream order (First < Second).
	First, Second int
	// LevelFirst/ShardFirst and LevelSecond/ShardSecond are the two
	// instructions' schedule coordinates.
	LevelFirst, ShardFirst   int32
	LevelSecond, ShardSecond int32
}

// String renders the witness as one line.
func (r Race) String() string {
	return fmt.Sprintf("%v on slot %d: sim[%d] (level %d shard %d) vs sim[%d] (level %d shard %d)",
		r.Kind, r.Slot, r.First, r.LevelFirst, r.ShardFirst, r.Second, r.LevelSecond, r.ShardSecond)
}

// maxRaces bounds the witness list: one bad plan breaks thousands of
// accesses and the first few localize it.
const maxRaces = 256

// CheckSchedule is the static race detector behind rule V012: it proves
// every pair of conflicting accesses in the schedule is ordered by
// happens-before, or returns a witness for each violation found.
//
// The schedule's happens-before is the transitive order "earlier level,
// or same level on the same shard in stream order": barriers order
// levels, and a shard executes its slice of a level sequentially. Two
// same-level instructions on different shards are never ordered, so any
// pair touching one slot with at least one write must be proven apart —
// which the sweep does per slot, against the last write and the reads
// since it. Adjacent-pair checking suffices: happens-before here is
// transitive over stream order, so an unordered non-adjacent pair forces
// some adjacent pair to be unordered too, and at least one witness
// surfaces. Scratch slots follow the private-arena model (package
// shard): per-shard copies make cross-shard scratch write-write and
// write-after-read pairs harmless, while any cross-shard scratch
// read-after-write is an escape and therefore always a violation.
//
// An error reports a malformed schedule (wrong lengths, out-of-range
// coordinates); races are only meaningful for a well-formed one.
func CheckSchedule(code []program.Instr, scratchStart int32, sch *Schedule) ([]Race, error) {
	n := len(code)
	if len(sch.Level) != n || len(sch.Shard) != n {
		return nil, fmt.Errorf("dataflow: schedule covers %d/%d instructions, program has %d",
			len(sch.Level), len(sch.Shard), n)
	}
	if sch.Workers < 1 || sch.Levels < 1 && n > 0 {
		return nil, fmt.Errorf("dataflow: schedule has %d workers, %d levels", sch.Workers, sch.Levels)
	}
	for i := 0; i < n; i++ {
		if sch.Level[i] < 0 || int(sch.Level[i]) >= sch.Levels || sch.Shard[i] < 0 || int(sch.Shard[i]) >= sch.Workers {
			return nil, fmt.Errorf("dataflow: instruction %d assigned to level %d shard %d, outside %d levels x %d workers",
				i, sch.Level[i], sch.Shard[i], sch.Levels, sch.Workers)
		}
	}

	// happens-before for stream-ordered i < j.
	hb := func(i, j int) bool {
		return sch.Level[i] < sch.Level[j] || sch.Level[i] == sch.Level[j] && sch.Shard[i] == sch.Shard[j]
	}

	nv := 0
	for i := range code {
		in := &code[i]
		for _, s := range []int32{in.Dst, in.A, in.B} {
			if int(s) >= nv {
				nv = int(s) + 1
			}
		}
	}
	lastWrite := make([]int, nv)
	for i := range lastWrite {
		lastWrite[i] = -1
	}
	readers := make([][]int, nv) // reads of the current value, per persistent slot
	var races []Race
	emit := func(kind RaceKind, s int32, first, second int) {
		if len(races) >= maxRaces {
			return
		}
		races = append(races, Race{Kind: kind, Slot: s, First: first, Second: second,
			LevelFirst: sch.Level[first], ShardFirst: sch.Shard[first],
			LevelSecond: sch.Level[second], ShardSecond: sch.Shard[second]})
	}
	var rbuf []int32
	for j := 0; j < n; j++ {
		in := &code[j]
		rbuf = in.ReadSlots(rbuf[:0])
		for _, s := range rbuf {
			i := lastWrite[s]
			if i < 0 {
				continue // pre-run state: ordered before every shard's start
			}
			switch {
			case s >= scratchStart && sch.Shard[i] != sch.Shard[j]:
				emit(RaceScratchEscape, s, i, j)
			case !hb(i, j):
				emit(RaceStaleRead, s, i, j)
			}
		}
		if in.Writes() {
			s := in.Dst
			if s < scratchStart {
				if i := lastWrite[s]; i >= 0 && i != j && !hb(i, j) {
					emit(RaceWriteWrite, s, i, j)
				}
				for _, r := range readers[s] {
					if !hb(r, j) {
						emit(RaceWriteOvertakesRead, s, r, j)
					}
				}
				readers[s] = readers[s][:0]
			}
			lastWrite[s] = j
		}
		// Record reads after the write checks: an instruction reading its
		// own destination orders itself.
		for _, s := range rbuf {
			if s < scratchStart {
				readers[s] = append(readers[s], j)
			}
		}
	}
	return races, nil
}
