// Unit tests for the dataflow engine and its four clients on tiny
// hand-built streams where the exact solution is known. The ISCAS-scale
// behaviour is covered by package verify's mutation tests; these pin the
// lattice semantics themselves.
package dataflow_test

import (
	"strings"
	"testing"

	"udsim/internal/dataflow"
	"udsim/internal/program"
)

func prog(numVars int, code ...program.Instr) *program.Program {
	return &program.Program{WordBits: 8, NumVars: numVars, Code: code}
}

func instr(op program.Op, dst, a, b int32, sh uint8) program.Instr {
	return program.Instr{Op: op, Dst: dst, A: a, B: b, Sh: sh}
}

// TestLivenessCrossVector is the back edge in miniature: LiveOut demands
// only slot 1, but Init copies slot 0 into it — so the previous vector's
// Sim write of slot 0 is live even though no LiveOut slot names it. A
// single backward pass would call that write dead; the fixpoint may not.
func TestLivenessCrossVector(t *testing.T) {
	st := &dataflow.Stream{
		Init: prog(3, instr(program.OpMove, 1, 0, program.None, 0)),
		Sim: prog(3,
			instr(program.OpConst1, 0, program.None, program.None, 0),
		),
		ScratchStart: 2,
		LiveOut:      []int32{1},
	}
	res := dataflow.Liveness(st)
	if res.NDead() != 0 {
		t.Fatalf("cross-vector live store marked dead: %+v", res)
	}
	if res.Passes < 2 {
		t.Fatalf("fixpoint converged in %d pass(es); the back edge demands at least 2", res.Passes)
	}
	if !res.LiveIn.Get(0) {
		t.Fatal("slot 0 feeds next-vector init but is not in LiveIn")
	}
	if res.LiveIn.Get(1) {
		t.Fatal("slot 1 is overwritten by init before any read; must not be in LiveIn")
	}
}

// TestLivenessDeadStore: the first of two writes to one slot with no
// read between them is dead; the second is demanded by LiveOut.
func TestLivenessDeadStore(t *testing.T) {
	st := &dataflow.Stream{
		Sim: prog(3,
			instr(program.OpConst1, 0, program.None, program.None, 0), // dead: overwritten below
			instr(program.OpConst0, 0, program.None, program.None, 0),
			instr(program.OpConst1, 2, program.None, program.None, 0), // dead: scratch, never read
		),
		ScratchStart: 2,
		LiveOut:      []int32{0},
	}
	res := dataflow.Liveness(st)
	if res.NDeadSim != 2 || !res.DeadSim[0] || res.DeadSim[1] || !res.DeadSim[2] {
		t.Fatalf("dead marks wrong: %+v", res.DeadSim)
	}
}

// TestLivenessRuntimeKill: the runtime input-write between Init and Sim
// overwrites slot 0, so an Init store into it can never be observed.
func TestLivenessRuntimeKill(t *testing.T) {
	st := &dataflow.Stream{
		Init:           prog(2, instr(program.OpConst1, 0, program.None, program.None, 0)),
		Sim:            prog(2, instr(program.OpMove, 1, 0, program.None, 0)),
		ScratchStart:   2,
		RuntimeWritten: []int32{0},
		LiveOut:        []int32{1},
	}
	res := dataflow.Liveness(st)
	if res.NDeadInit != 1 || !res.DeadInit[0] {
		t.Fatalf("init store under a runtime write not marked dead: %+v", res)
	}
}

// TestConstsXorSelf: XOR of a slot with itself is zero regardless of the
// unknown input, and the engine must prove it even though the operand
// value is bottom. Both writes land in persistent slots, which is where
// constant results are reported (a constant scratch temporary is the
// compiler's business; a constant net result is suspicious).
func TestConstsXorSelf(t *testing.T) {
	st := &dataflow.Stream{
		Sim: prog(3,
			instr(program.OpXor, 2, 0, 0, 0),             // provably 0
			instr(program.OpMove, 1, 2, program.None, 0), // provably 0 too
		),
		ScratchStart: 3,
		LiveOut:      []int32{1},
	}
	fs := dataflow.Consts(st)
	if len(fs) != 2 {
		t.Fatalf("got %d findings, want 2: %+v", len(fs), fs)
	}
	for _, f := range fs {
		if f.Kind != dataflow.ConstResult || f.Seg != dataflow.SegSim {
			t.Fatalf("unexpected finding: %+v", f)
		}
	}
	if fs[0].Slot != 2 || fs[1].Slot != 1 {
		t.Fatalf("finding slots wrong: %+v", fs)
	}

	// The same computation into scratch slots is the compiler's own
	// idiom and must not be reported.
	st.ScratchStart = 2
	if fs := dataflow.Consts(st); len(fs) != 1 || fs[0].Slot != 1 {
		t.Fatalf("scratch constants should be silent: %+v", fs)
	}
}

// TestConstsNoOpAccum: OR-merging a provably-zero word is classified as
// a no-op accumulation, not a constant result (the destination itself is
// not constant — it holds whatever the real producer wrote).
func TestConstsNoOpAccum(t *testing.T) {
	st := &dataflow.Stream{
		Sim: prog(4,
			instr(program.OpMove, 1, 0, program.None, 0), // real value
			instr(program.OpConst0, 2, program.None, program.None, 0),
			instr(program.OpShlOr, 1, 2, program.None, 4), // merges provable zero
		),
		ScratchStart: 3,
		LiveOut:      []int32{1},
	}
	fs := dataflow.Consts(st)
	// Exactly one finding: the Const0 literal is the compiler's own idiom
	// (never reported), and the destination word is not itself constant —
	// only the accumulation is provably useless.
	if len(fs) != 1 {
		t.Fatalf("got %d findings, want 1: %+v", len(fs), fs)
	}
	f := fs[0]
	if f.Kind != dataflow.ConstNoOpAccum || f.Index != 2 || f.Slot != 1 {
		t.Fatalf("no-op accumulation witness wrong: %+v", f)
	}
}

// TestConstsUnknownInputsStayUnknown: runtime-written slots are pinned by
// the vectors, so nothing downstream of one may be called constant.
func TestConstsUnknownInputsStayUnknown(t *testing.T) {
	st := &dataflow.Stream{
		Sim: prog(3,
			instr(program.OpAnd, 1, 0, 0, 0),
			instr(program.OpNot, 2, 1, program.None, 0),
		),
		ScratchStart:   2,
		RuntimeWritten: []int32{0},
		LiveOut:        []int32{1},
	}
	if fs := dataflow.Consts(st); len(fs) != 0 {
		t.Fatalf("input-dependent values reported constant: %+v", fs)
	}
}

// packingStream builds the parallel technique's accumulation idiom in
// miniature: extract single-bit payloads from an input word, open the
// destination with a fresh ShlMove, then append the next phase with a
// shifted ShlOr. sh2 picks the second payload's landing position — 1 is
// the legal discipline (above the bit already used), 0 collides.
func packingStream(sh2 uint8) *dataflow.Stream {
	return &dataflow.Stream{
		Sim: prog(5,
			instr(program.OpBit, 3, 0, program.None, 0),     // payload: bit span [0,0]
			instr(program.OpShlMove, 1, 3, program.None, 0), // opening write, dst span [0,0]
			instr(program.OpBit, 4, 0, program.None, 1),     // next payload: [0,0]
			instr(program.OpShlOr, 1, 4, program.None, sh2),
		),
		ScratchStart:   2,
		RuntimeWritten: []int32{0},
		LiveOut:        []int32{1},
	}
}

// TestIntervalsCollision: the appended payload lands on a bit position
// the destination word already uses — the accumulation must be flagged
// with both colliding spans in the witness.
func TestIntervalsCollision(t *testing.T) {
	fs := dataflow.Intervals(packingStream(0))
	if len(fs) != 1 {
		t.Fatalf("got %d findings, want 1: %+v", len(fs), fs)
	}
	f := fs[0]
	if f.Seg != dataflow.SegSim || f.Index != 3 || f.Slot != 1 {
		t.Fatalf("collision witness wrong: %+v", f)
	}
	if !f.In.Overlaps(f.Dst) {
		t.Fatalf("witness spans do not overlap: %+v", f)
	}
	if !strings.Contains(f.Msg(), "collide") {
		t.Fatalf("unexpected message: %s", f.Msg())
	}
}

// TestIntervalsDisjointPacking: the legal packing discipline — each shift
// places its payload above the bits already used — must verify silently.
func TestIntervalsDisjointPacking(t *testing.T) {
	if fs := dataflow.Intervals(packingStream(1)); len(fs) != 0 {
		t.Fatalf("disjoint packing flagged: %+v", fs)
	}
}

// schedule builds a Schedule with one instruction per (level, shard) pair
// given as parallel slices.
func schedule(workers int, levels []int32, shards []int32) *dataflow.Schedule {
	maxL := int32(0)
	for _, l := range levels {
		if l >= maxL {
			maxL = l + 1
		}
	}
	return &dataflow.Schedule{Workers: workers, Levels: int(maxL), Level: levels, Shard: shards}
}

// TestCheckScheduleClean: producer on level 0, consumer on level 1 —
// ordered by the barrier regardless of shard.
func TestCheckScheduleClean(t *testing.T) {
	code := []program.Instr{
		instr(program.OpConst1, 0, program.None, program.None, 0),
		instr(program.OpMove, 1, 0, program.None, 0),
	}
	races, err := dataflow.CheckSchedule(code, 2, schedule(2, []int32{0, 1}, []int32{0, 1}))
	if err != nil || len(races) != 0 {
		t.Fatalf("clean schedule rejected: races=%v err=%v", races, err)
	}
}

// TestCheckScheduleStaleRead: consumer in the same level on a different
// shard — no barrier between producer and consumer.
func TestCheckScheduleStaleRead(t *testing.T) {
	code := []program.Instr{
		instr(program.OpConst1, 0, program.None, program.None, 0),
		instr(program.OpMove, 1, 0, program.None, 0),
	}
	races, err := dataflow.CheckSchedule(code, 2, schedule(2, []int32{0, 0}, []int32{0, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if len(races) != 1 || races[0].Kind != dataflow.RaceStaleRead {
		t.Fatalf("stale read not detected: %v", races)
	}
	r := races[0]
	if r.Slot != 0 || r.First != 0 || r.Second != 1 {
		t.Fatalf("witness coordinates wrong: %+v", r)
	}
	if !strings.Contains(r.String(), "stale-read on slot 0") {
		t.Fatalf("unexpected witness rendering: %s", r)
	}
}

// TestCheckScheduleScratchEscape: a scratch value consumed on another
// shard in a LATER level. Persistent state would be fine (the barrier
// orders it); scratch lives in per-shard arenas, so it is an escape.
func TestCheckScheduleScratchEscape(t *testing.T) {
	code := []program.Instr{
		instr(program.OpConst1, 2, program.None, program.None, 0), // scratch producer
		instr(program.OpMove, 0, 2, program.None, 0),              // consumer, other shard
	}
	races, err := dataflow.CheckSchedule(code, 2, schedule(2, []int32{0, 1}, []int32{0, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if len(races) != 1 || races[0].Kind != dataflow.RaceScratchEscape {
		t.Fatalf("scratch escape not detected: %v", races)
	}
	// Same pair on the same shard is the private-arena happy path.
	races, err = dataflow.CheckSchedule(code, 2, schedule(2, []int32{0, 1}, []int32{1, 1}))
	if err != nil || len(races) != 0 {
		t.Fatalf("same-shard scratch flow flagged: races=%v err=%v", races, err)
	}
}

// TestCheckScheduleWriteWrite: two unordered writes of one persistent
// slot; and the same pair ordered by a barrier verifies silently.
func TestCheckScheduleWriteWrite(t *testing.T) {
	code := []program.Instr{
		instr(program.OpConst1, 0, program.None, program.None, 0),
		instr(program.OpConst0, 0, program.None, program.None, 0),
	}
	races, err := dataflow.CheckSchedule(code, 2, schedule(2, []int32{0, 0}, []int32{0, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if len(races) != 1 || races[0].Kind != dataflow.RaceWriteWrite {
		t.Fatalf("write-write not detected: %v", races)
	}
	races, err = dataflow.CheckSchedule(code, 2, schedule(2, []int32{0, 1}, []int32{0, 1}))
	if err != nil || len(races) != 0 {
		t.Fatalf("barrier-ordered writes flagged: races=%v err=%v", races, err)
	}
}

// TestCheckScheduleMalformed: wrong lengths and out-of-range coordinates
// are schedule errors, not races.
func TestCheckScheduleMalformed(t *testing.T) {
	code := []program.Instr{instr(program.OpConst1, 0, program.None, program.None, 0)}
	cases := []*dataflow.Schedule{
		{Workers: 2, Levels: 1, Level: []int32{0, 0}, Shard: []int32{0, 0}}, // wrong length
		{Workers: 2, Levels: 1, Level: []int32{1}, Shard: []int32{0}},       // level out of range
		{Workers: 2, Levels: 1, Level: []int32{0}, Shard: []int32{2}},       // shard out of range
		{Workers: 2, Levels: 1, Level: []int32{-1}, Shard: []int32{0}},      // negative level
	}
	for i, sch := range cases {
		if _, err := dataflow.CheckSchedule(code, 1, sch); err == nil {
			t.Fatalf("case %d: malformed schedule accepted", i)
		}
	}
}
