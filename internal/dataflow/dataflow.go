// Package dataflow is a lattice dataflow engine for compiled simulation
// programs — the abstract-interpretation layer under verify rules
// V009–V012 and the dead-store eliminator.
//
// The compiled techniques emit flat, branch-free instruction streams, so
// the classic worklist algorithm degenerates pleasantly: each program is a
// single basic block whose worklist order is the stream order, and the
// only back edge in the whole control-flow graph is the per-vector loop
// (Init runs over the previous vector's state, the runtime writes the
// primary inputs, Sim runs, and the surviving persistent slots feed the
// next vector's Init). Solve therefore iterates whole passes over the
// cycle, folding the fact that flows around the back edge into the
// boundary fact until it stabilizes, then replays one pass with an
// observer callback so clients can harvest per-instruction facts without
// storing a fact per program point.
//
// Clients supply the lattice: Liveness (backward bitset, drives the
// dead-store eliminator and rule V009), Consts (forward constant
// propagation through packed words, rule V010), Intervals (forward
// possibly-set bit ranges proving shift/mask containment, rule V011).
// CheckSchedule is the happens-before race detector over shard plans
// (rule V012); it is a path-sensitive sweep rather than a lattice problem
// and lives beside the engine in hb.go.
package dataflow

import (
	"udsim/internal/program"
)

// Direction orients an analysis along or against the execution order.
type Direction int

const (
	// Forward propagates facts in execution order.
	Forward Direction = iota
	// Backward propagates facts against execution order.
	Backward
)

// Segment identifies which part of the per-vector cycle a point is in.
type Segment int

const (
	// SegInit is the per-vector initialization program.
	SegInit Segment = iota
	// SegRuntime is the runtime's primary-input write between Init and Sim.
	SegRuntime
	// SegSim is the simulation program.
	SegSim
)

// Point is one program point of the per-vector cycle: an instruction of
// Init or Sim, or the single runtime input-write step between them.
type Point struct {
	// Seg is the cycle segment.
	Seg Segment
	// Index is the instruction index within the segment's program, or -1
	// for SegRuntime.
	Index int
	// Instr is the instruction at the point, nil for SegRuntime.
	Instr *program.Instr
}

// Stream bundles the instruction streams and boundary metadata of one
// compiled simulator — the subset of a verify.Spec the dataflow engine
// needs. The execution model per vector: Init runs over the previous
// vector's state, the runtime writes the RuntimeWritten slots, Sim runs,
// and persistent slots (below ScratchStart) carry to the next vector.
type Stream struct {
	// Init is the per-vector initialization program; may be nil.
	Init *program.Program
	// Sim is the simulation program; required.
	Sim *program.Program
	// ScratchStart is the first scratch slot; slots below it persist
	// across vectors.
	ScratchStart int32
	// RuntimeWritten lists the slots the runtime writes between Init and
	// Sim.
	RuntimeWritten []int32
	// LiveOut lists the slots that must be correct when Sim finishes.
	LiveOut []int32
}

// NumVars returns the state-array size shared by both programs.
func (st *Stream) NumVars() int { return st.Sim.NumVars }

// Persistent reports whether a slot carries state across vectors.
func (st *Stream) Persistent(slot int32) bool { return slot < st.ScratchStart }

// Problem is one lattice analysis over a Stream's per-vector cycle. The
// fact type F is typically a slice indexed by slot; Transfer may mutate
// its argument in place and must return the updated fact.
type Problem[F any] interface {
	// Direction orients the analysis.
	Direction() Direction
	// Boundary returns the fact at the analysis entry: the vector entry
	// (before Init) for forward problems, the sim exit for backward ones.
	Boundary() F
	// Clone deep-copies a fact so each pass can start from the boundary.
	Clone(f F) F
	// Transfer applies one program point to the fact.
	Transfer(pt Point, f F) F
	// Meet folds the fact that flowed around the per-vector back edge
	// into the boundary fact, reporting whether the boundary grew. The
	// engine iterates until it does not.
	Meet(boundary, wrapped F) (F, bool)
}

// maxPasses bounds the fixpoint iteration. Every client lattice here is
// finite-height (per-slot bitsets, constants, intervals), so divergence
// would be an engine bug; the cap turns it into a visible truncation
// instead of a hang.
const maxPasses = 1000

// Solve runs the analysis to fixpoint and returns the stabilized boundary
// fact plus the number of passes taken. observe, when non-nil, is called
// once per program point on a final replay pass with the fact flowing
// into the point (in the problem's direction, before Transfer applies the
// point) — O(1) fact storage regardless of program length.
func Solve[F any](st *Stream, p Problem[F], observe func(Point, F)) (F, int) {
	boundary := p.Boundary()
	passes := 0
	for passes < maxPasses {
		passes++
		wrapped := runPass(st, p, p.Clone(boundary), nil)
		var changed bool
		boundary, changed = p.Meet(boundary, wrapped)
		if !changed {
			break
		}
	}
	if observe != nil {
		runPass(st, p, p.Clone(boundary), observe)
	}
	return boundary, passes
}

// runPass pushes a fact once around the per-vector cycle in the problem's
// direction and returns the fact at the far end (the back edge's source).
func runPass[F any](st *Stream, p Problem[F], f F, observe func(Point, F)) F {
	step := func(pt Point) {
		if observe != nil {
			observe(pt, f)
		}
		f = p.Transfer(pt, f)
	}
	forward := func(seg Segment, prog *program.Program) {
		if prog == nil {
			return
		}
		for i := range prog.Code {
			step(Point{Seg: seg, Index: i, Instr: &prog.Code[i]})
		}
	}
	backward := func(seg Segment, prog *program.Program) {
		if prog == nil {
			return
		}
		for i := len(prog.Code) - 1; i >= 0; i-- {
			step(Point{Seg: seg, Index: i, Instr: &prog.Code[i]})
		}
	}
	runtime := Point{Seg: SegRuntime, Index: -1}
	if p.Direction() == Forward {
		forward(SegInit, st.Init)
		step(runtime)
		forward(SegSim, st.Sim)
	} else {
		backward(SegSim, st.Sim)
		step(runtime)
		backward(SegInit, st.Init)
	}
	return f
}
