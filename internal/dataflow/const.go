package dataflow

import (
	"fmt"

	"udsim/internal/program"
)

// ConstKind classifies a constant-propagation finding.
type ConstKind int

const (
	// ConstResult marks a simulation instruction whose packed result is
	// provably the same constant for every input vector.
	ConstResult ConstKind = iota
	// ConstNoOpAccum marks an accumulating instruction that provably
	// merges zero bits into its destination.
	ConstNoOpAccum
)

// ConstFinding is one constant-propagation diagnostic (rule V010).
type ConstFinding struct {
	// Kind classifies the finding.
	Kind ConstKind
	// Seg and Index locate the instruction.
	Seg   Segment
	Index int
	// Slot is the destination slot.
	Slot int32
	// Msg is the human-readable diagnosis.
	Msg string
}

// constFact tracks, per slot, whether the word's value is a compile-time
// constant and what it is. Primary inputs are pinned by the vectors, so
// the runtime write drops them to unknown; persistent slots enter the
// vector unknown (their value is previous-vector state), which keeps the
// lattice sound without a cross-vector fixpoint.
type constFact struct {
	known BitSet
	val   []uint64
}

func (f constFact) get(s int32) (uint64, bool) {
	if !f.known.Get(s) {
		return 0, false
	}
	return f.val[s], true
}

func (f constFact) set(s int32, v uint64) {
	f.known.Set(s)
	f.val[s] = v
}

func (f constFact) unset(s int32) { f.known.Clear(s) }

// consts is the forward constant-propagation lattice over packed words,
// folding the AND/OR/XOR identities that hold bit-parallel.
type consts struct {
	st   *Stream
	mask uint64
	w    uint
}

func (c *consts) Direction() Direction { return Forward }

func (c *consts) Boundary() constFact {
	nv := c.st.NumVars()
	return constFact{known: NewBitSet(nv), val: make([]uint64, nv)}
}

func (c *consts) Clone(f constFact) constFact {
	return constFact{known: f.known.Clone(), val: append([]uint64(nil), f.val...)}
}

func (c *consts) Meet(boundary, wrapped constFact) (constFact, bool) {
	// No cross-vector propagation: persistent slots re-enter unknown.
	return boundary, false
}

// eval returns the instruction's result value when it is provably
// constant under the fact. Accumulating ops need their destination's
// prior value as well; incoming computes just the merged-in part.
func (c *consts) eval(in *program.Instr, f constFact) (uint64, bool) {
	var a, b uint64
	var aok, bok bool
	if in.UsesA() {
		a, aok = f.get(in.A)
	}
	if in.UsesBSlot() {
		b, bok = f.get(in.B)
	}
	d, dok := f.get(in.Dst)
	switch in.Op {
	case program.OpConst0:
		return 0, true
	case program.OpConst1:
		return c.mask, true
	case program.OpAnd:
		switch {
		case aok && bok:
			return a & b, true
		case aok && a == 0, bok && b == 0:
			return 0, true
		case in.A == in.B && aok:
			return a, true
		}
	case program.OpOr:
		switch {
		case aok && bok:
			return a | b, true
		case aok && a == c.mask, bok && b == c.mask:
			return c.mask, true
		case in.A == in.B && aok:
			return a, true
		}
	case program.OpXor:
		if in.A == in.B {
			return 0, true // x ^ x = 0 even when x is unknown
		}
		if aok && bok {
			return a ^ b, true
		}
	case program.OpNand:
		switch {
		case aok && bok:
			return c.mask &^ (a & b), true
		case aok && a == 0, bok && b == 0:
			return c.mask, true
		}
	case program.OpNor:
		switch {
		case aok && bok:
			return c.mask &^ (a | b), true
		case aok && a == c.mask, bok && b == c.mask:
			return 0, true
		}
	case program.OpXnor:
		if in.A == in.B {
			return c.mask, true
		}
		if aok && bok {
			return c.mask &^ (a ^ b), true
		}
	case program.OpNot:
		if aok {
			return c.mask &^ a, true
		}
	case program.OpMove:
		if aok {
			return a, true
		}
	case program.OpOrMove:
		switch {
		case aok && dok:
			return d | a, true
		case aok && a == c.mask, dok && d == c.mask:
			return c.mask, true
		}
	case program.OpShlOr:
		if v, ok := c.incoming(in, f); ok && dok {
			return d | v, true
		}
	case program.OpShlMove, program.OpShrMove:
		return c.incoming(in, f)
	case program.OpFill:
		if aok {
			if a>>in.Sh&1 == 1 {
				return c.mask, true
			}
			return 0, true
		}
	case program.OpBit:
		if aok {
			return a >> in.Sh & 1, true
		}
	case program.OpFillLowN:
		if aok {
			low := ^uint64(0) >> (64 - uint(in.B))
			if a>>in.Sh&1 == 1 {
				return low, true
			}
			return 0, true
		}
	}
	return 0, false
}

// incoming computes the shifted-and-carried value a shift instruction
// merges or moves into its destination, when provably constant.
func (c *consts) incoming(in *program.Instr, f constFact) (uint64, bool) {
	a, aok := f.get(in.A)
	if !aok {
		return 0, false
	}
	v := a << in.Sh
	if in.B != program.None && in.Sh > 0 {
		b, bok := f.get(in.B)
		if !bok {
			return 0, false
		}
		v |= b >> (c.w - uint(in.Sh))
	}
	return v & c.mask, true
}

func (c *consts) Transfer(pt Point, f constFact) constFact {
	if pt.Seg == SegRuntime {
		for _, s := range c.st.RuntimeWritten {
			f.unset(s)
		}
		return f
	}
	in := pt.Instr
	if !in.Writes() {
		return f
	}
	if v, ok := c.eval(in, f); ok {
		f.set(in.Dst, v)
	} else {
		f.unset(in.Dst)
	}
	return f
}

// Consts runs forward constant propagation and returns its diagnostics:
// accumulating instructions that provably merge zero bits into their
// destination (removable work the compiler should not have emitted), and
// simulation-phase instructions that compute a provable constant into a
// persistent slot (a gate whose packed result does not depend on the
// vector — suspicious in a compiled netlist). Both are advisory: they
// cannot make results wrong, only reveal that the stream computes less
// than its shape suggests.
func Consts(st *Stream) []ConstFinding {
	c := &consts{st: st, mask: st.Sim.Mask(), w: uint(st.Sim.WordBits)}
	var out []ConstFinding
	Solve[constFact](st, c, func(pt Point, f constFact) {
		in := pt.Instr
		if in == nil || !in.Writes() {
			return
		}
		if in.Accumulates() {
			var v uint64
			var ok bool
			if in.Op == program.OpOrMove {
				v, ok = f.get(in.A)
			} else {
				v, ok = c.incoming(in, f)
			}
			if ok && v == 0 {
				out = append(out, ConstFinding{Kind: ConstNoOpAccum, Seg: pt.Seg, Index: pt.Index, Slot: in.Dst,
					Msg: fmt.Sprintf("%s accumulates a provably-zero value", in.Op)})
			}
			return
		}
		if pt.Seg != SegSim || !st.Persistent(in.Dst) {
			return
		}
		switch in.Op {
		case program.OpConst0, program.OpConst1:
			return // literal constants are the compiler's own idiom
		}
		if v, ok := c.eval(in, f); ok {
			out = append(out, ConstFinding{Kind: ConstResult, Seg: pt.Seg, Index: pt.Index, Slot: in.Dst,
				Msg: fmt.Sprintf("%s computes the constant %#x regardless of the input vector", in.Op, v)})
		}
	})
	return out
}
