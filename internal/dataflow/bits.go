package dataflow

// BitSet is a dense bitmap over state slots.
type BitSet []uint64

// NewBitSet returns a set holding n slots.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Get reports whether slot s is in the set.
func (b BitSet) Get(s int32) bool { return b[s>>6]>>(uint(s)&63)&1 == 1 }

// Set adds slot s.
func (b BitSet) Set(s int32) { b[s>>6] |= 1 << (uint(s) & 63) }

// Clear removes slot s.
func (b BitSet) Clear(s int32) { b[s>>6] &^= 1 << (uint(s) & 63) }

// Clone deep-copies the set.
func (b BitSet) Clone() BitSet { return append(BitSet(nil), b...) }

// Count returns the number of set slots.
func (b BitSet) Count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}
