package dataflow

// LivenessResult is the fixpoint liveness solution over the per-vector
// cycle: which instructions are dead stores, and which persistent slots
// are live at the vector entry (read by Init before anything writes
// them — exactly the state the previous vector must leave behind).
type LivenessResult struct {
	// DeadInit and DeadSim mark dead instructions per program, indexed by
	// instruction: a store is dead when its destination is not live at
	// the point just after it, so removing it cannot change any live-out
	// slot of any vector.
	DeadInit []bool
	DeadSim  []bool
	// NDeadInit and NDeadSim count the marks.
	NDeadInit int
	NDeadSim  int
	// LiveIn holds the persistent slots live at the vector entry.
	LiveIn BitSet
	// Passes is the number of fixpoint passes taken (1 means the given
	// LiveOut set already covered every cross-vector dependency).
	Passes int
}

// NDead returns the total dead-store count.
func (r *LivenessResult) NDead() int { return r.NDeadInit + r.NDeadSim }

// liveness is the backward bitset lattice: a slot is in the fact when its
// current value may still reach a live-out slot.
type liveness struct {
	st     *Stream
	liveIn BitSet // persistent part of the last wrapped fact (set by Meet)
	rbuf   []int32
}

func (l *liveness) Direction() Direction { return Backward }

func (l *liveness) Boundary() BitSet {
	b := NewBitSet(l.st.NumVars())
	for _, s := range l.st.LiveOut {
		b.Set(s)
	}
	return b
}

func (l *liveness) Clone(f BitSet) BitSet { return f.Clone() }

func (l *liveness) Transfer(pt Point, f BitSet) BitSet {
	if pt.Seg == SegRuntime {
		// The runtime fully overwrites the input slots: whatever was in
		// them before cannot be observed.
		for _, s := range l.st.RuntimeWritten {
			f.Clear(s)
		}
		return f
	}
	in := pt.Instr
	if !in.Writes() || !f.Get(in.Dst) {
		return f // a store into a dead slot transfers nothing
	}
	if !in.Accumulates() {
		f.Clear(in.Dst)
	}
	l.rbuf = in.ReadSlots(l.rbuf[:0])
	for _, s := range l.rbuf {
		f.Set(s)
	}
	return f
}

func (l *liveness) Meet(boundary, wrapped BitSet) (BitSet, bool) {
	// The back edge: a persistent slot live at the vector entry must be
	// live at the previous vector's sim exit. Scratch does not survive
	// the loop (a live scratch slot here is a read-before-write, which is
	// rule V001's business, not liveness's).
	changed := false
	l.liveIn = NewBitSet(l.st.NumVars())
	for s := int32(0); s < l.st.ScratchStart; s++ {
		if wrapped.Get(s) {
			l.liveIn.Set(s)
			if !boundary.Get(s) {
				boundary.Set(s)
				changed = true
			}
		}
	}
	return boundary, changed
}

// Liveness solves backward liveness over the stream's per-vector cycle.
// Unlike a single backward pass seeded with LiveOut, the fixpoint also
// chases values around the vector loop: a slot Init reads is demanded
// from the previous vector's Sim, so a store feeding only next-vector
// initialization is still live.
func Liveness(st *Stream) *LivenessResult {
	l := &liveness{st: st}
	res := &LivenessResult{
		DeadSim: make([]bool, len(st.Sim.Code)),
	}
	if st.Init != nil {
		res.DeadInit = make([]bool, len(st.Init.Code))
	}
	_, passes := Solve[BitSet](st, l, func(pt Point, f BitSet) {
		if pt.Instr == nil || !pt.Instr.Writes() || f.Get(pt.Instr.Dst) {
			return
		}
		switch pt.Seg {
		case SegInit:
			res.DeadInit[pt.Index] = true
			res.NDeadInit++
		case SegSim:
			res.DeadSim[pt.Index] = true
			res.NDeadSim++
		}
	})
	res.Passes = passes
	res.LiveIn = l.liveIn
	if res.LiveIn == nil {
		res.LiveIn = NewBitSet(st.NumVars())
	}
	return res
}
