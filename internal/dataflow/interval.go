package dataflow

import (
	"fmt"

	"udsim/internal/program"
)

// Span is a conservative interval of possibly-set bit positions within a
// packed word: every 1 bit of the abstracted value lies in [Lo,Hi].
// Lo > Hi means the value is provably zero.
type Span struct{ Lo, Hi int16 }

// Empty reports whether the span abstracts only the zero word.
func (s Span) Empty() bool { return s.Lo > s.Hi }

// Overlaps reports whether two spans share a bit position.
func (s Span) Overlaps(o Span) bool {
	return !s.Empty() && !o.Empty() && s.Lo <= o.Hi && o.Lo <= s.Hi
}

func (s Span) String() string {
	if s.Empty() {
		return "∅"
	}
	return fmt.Sprintf("[%d,%d]", s.Lo, s.Hi)
}

var emptySpan = Span{Lo: 1, Hi: 0}

func fullSpan(w int) Span { return Span{Lo: 0, Hi: int16(w - 1)} }

func hull(a, b Span) Span {
	if a.Empty() {
		return b
	}
	if b.Empty() {
		return a
	}
	if b.Lo < a.Lo {
		a.Lo = b.Lo
	}
	if b.Hi > a.Hi {
		a.Hi = b.Hi
	}
	return a
}

func intersect(a, b Span) Span {
	if a.Empty() || b.Empty() {
		return emptySpan
	}
	if b.Lo > a.Lo {
		a.Lo = b.Lo
	}
	if b.Hi < a.Hi {
		a.Hi = b.Hi
	}
	return a
}

// IntervalFinding is one bit-interval diagnostic (rule V011): an
// accumulating write whose merged-in bits may collide with bits already
// present in the destination word — a bit-level write-after-write the
// single-assignment rule cannot see, because OR-accumulation is a legal
// second write at the word level.
type IntervalFinding struct {
	// Seg and Index locate the instruction.
	Seg   Segment
	Index int
	// Slot is the destination slot.
	Slot int32
	// In and Dst are the colliding spans: the merged-in value's
	// possibly-set bits and the destination's current possibly-set bits.
	In, Dst Span
}

// Msg renders the diagnosis.
func (f IntervalFinding) Msg() string {
	return fmt.Sprintf("accumulated bits %s may collide with bits %s already in the word", f.In, f.Dst)
}

// intervals is the forward possibly-set bit-interval lattice. Its job is
// to prove the parallel technique's packing discipline: every shift's
// payload and carry land in bit positions the destination word has not
// used yet, so OR-accumulation never silently merges two time phases
// into one bit.
type intervals struct {
	st *Stream
	w  int
}

func (c *intervals) Direction() Direction { return Forward }

func (c *intervals) Boundary() []Span {
	f := make([]Span, c.st.NumVars())
	for i := range f {
		f[i] = fullSpan(c.w) // previous-vector state and unwritten scratch: anything
	}
	return f
}

func (c *intervals) Clone(f []Span) []Span { return append([]Span(nil), f...) }

func (c *intervals) Meet(boundary, wrapped []Span) ([]Span, bool) {
	return boundary, false // boundary is already top for persistent slots
}

// shlSpan abstracts (a << Sh | b >> (W-Sh)) & mask: the payload moves up
// by Sh (bits pushed past W-1 drop) and the carry contributes the top Sh
// bits of b, landing in [0,Sh).
func (c *intervals) shlSpan(in *program.Instr, f []Span) Span {
	a := f[in.A]
	v := emptySpan
	if !a.Empty() && int(a.Lo)+int(in.Sh) <= c.w-1 {
		v = Span{Lo: a.Lo + int16(in.Sh), Hi: a.Hi + int16(in.Sh)}
		if v.Hi > int16(c.w-1) {
			v.Hi = int16(c.w - 1)
		}
	}
	if in.B != program.None && in.Sh > 0 {
		b := intersect(f[in.B], Span{Lo: int16(c.w - int(in.Sh)), Hi: int16(c.w - 1)})
		if !b.Empty() {
			v = hull(v, Span{Lo: b.Lo - int16(c.w-int(in.Sh)), Hi: b.Hi - int16(c.w-int(in.Sh))})
		}
	}
	return v
}

// shrSpan abstracts (a >> Sh | b << (W-Sh)) & mask.
func (c *intervals) shrSpan(in *program.Instr, f []Span) Span {
	a := f[in.A]
	v := emptySpan
	if !a.Empty() && int(a.Hi) >= int(in.Sh) {
		v = Span{Lo: a.Lo - int16(in.Sh), Hi: a.Hi - int16(in.Sh)}
		if v.Lo < 0 {
			v.Lo = 0
		}
	}
	if in.B != program.None && in.Sh > 0 {
		b := intersect(f[in.B], Span{Lo: 0, Hi: int16(in.Sh - 1)})
		if !b.Empty() {
			v = hull(v, Span{Lo: b.Lo + int16(c.w-int(in.Sh)), Hi: b.Hi + int16(c.w-int(in.Sh))})
		}
	}
	return v
}

// contains reports whether bit Sh of slot a may be set.
func contains(f []Span, a int32, sh uint8) bool {
	s := f[a]
	return !s.Empty() && int16(sh) >= s.Lo && int16(sh) <= s.Hi
}

func (c *intervals) Transfer(pt Point, f []Span) []Span {
	if pt.Seg == SegRuntime {
		for _, s := range c.st.RuntimeWritten {
			f[s] = fullSpan(c.w)
		}
		return f
	}
	in := pt.Instr
	switch in.Op {
	case program.OpNop:
	case program.OpAnd:
		f[in.Dst] = intersect(f[in.A], f[in.B])
	case program.OpOr, program.OpXor:
		f[in.Dst] = hull(f[in.A], f[in.B])
	case program.OpNand, program.OpNor, program.OpXnor, program.OpNot:
		f[in.Dst] = fullSpan(c.w) // complements may set any bit
	case program.OpMove:
		f[in.Dst] = f[in.A]
	case program.OpOrMove:
		f[in.Dst] = hull(f[in.Dst], f[in.A])
	case program.OpConst0:
		f[in.Dst] = emptySpan
	case program.OpConst1:
		f[in.Dst] = fullSpan(c.w)
	case program.OpShlOr:
		f[in.Dst] = hull(f[in.Dst], c.shlSpan(in, f))
	case program.OpShlMove:
		f[in.Dst] = c.shlSpan(in, f)
	case program.OpShrMove:
		f[in.Dst] = c.shrSpan(in, f)
	case program.OpFill:
		if contains(f, in.A, in.Sh) {
			f[in.Dst] = fullSpan(c.w)
		} else {
			f[in.Dst] = emptySpan
		}
	case program.OpBit:
		if contains(f, in.A, in.Sh) {
			f[in.Dst] = Span{Lo: 0, Hi: 0}
		} else {
			f[in.Dst] = emptySpan
		}
	case program.OpFillLowN:
		if contains(f, in.A, in.Sh) {
			f[in.Dst] = Span{Lo: 0, Hi: int16(in.B - 1)}
		} else {
			f[in.Dst] = emptySpan
		}
	}
	return f
}

// Intervals runs the possibly-set bit-interval analysis and returns every
// accumulating write into a persistent slot whose merged-in span may
// overlap bits the destination word already holds. A clean compile keeps
// the two disjoint by construction: the word's low bits carry earlier
// phases (initialized by Init), the shift appends exactly the next phase.
func Intervals(st *Stream) []IntervalFinding {
	c := &intervals{st: st, w: st.Sim.WordBits}
	var out []IntervalFinding
	Solve[[]Span](st, c, func(pt Point, f []Span) {
		in := pt.Instr
		if in == nil || !in.Accumulates() || !st.Persistent(in.Dst) {
			return
		}
		var v Span
		if in.Op == program.OpShlOr {
			v = c.shlSpan(in, f)
		} else {
			v = f[in.A]
		}
		if v.Overlaps(f[in.Dst]) {
			out = append(out, IntervalFinding{Seg: pt.Seg, Index: pt.Index, Slot: in.Dst,
				In: v, Dst: f[in.Dst]})
		}
	})
	return out
}
