package atpg

import (
	"testing"

	"udsim/internal/circuit"
	"udsim/internal/fault"
	"udsim/internal/gen"
	"udsim/internal/logic"
	"udsim/internal/vectors"
)

func TestSimpleAndGate(t *testing.T) {
	b := circuit.NewBuilder("and")
	a := b.Input("a")
	bb := b.Input("b")
	o := b.Gate(logic.And, "o", a, bb)
	b.Output(o)
	g, err := New(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	aID, _ := g.Circuit().NetByName("a")
	oID, _ := g.Circuit().NetByName("o")

	// a/sa0 needs a=1, b=1.
	p, st := g.Generate(fault.Fault{Net: aID, Kind: fault.StuckAt0})
	if st != Found {
		t.Fatalf("a/sa0: %v", st)
	}
	if !p.Inputs[0] || !p.Inputs[1] || !p.Care[0] || !p.Care[1] {
		t.Errorf("a/sa0 pattern %+v, want 11", p)
	}
	// o/sa1 needs the output at 0: any input 0.
	p, st = g.Generate(fault.Fault{Net: oID, Kind: fault.StuckAt1})
	if st != Found {
		t.Fatalf("o/sa1: %v", st)
	}
	if p.Inputs[0] && p.Inputs[1] {
		t.Errorf("o/sa1 pattern %+v cannot be 11", p)
	}
}

func TestRedundantFaultProvedUntestable(t *testing.T) {
	// O = OR(a, AND(a, b)): absorption makes O ≡ a, so the AND output's
	// sa0 is undetectable (redundant logic).
	b := circuit.NewBuilder("red")
	a := b.Input("a")
	bb := b.Input("b")
	x := b.Gate(logic.And, "x", a, bb)
	o := b.Gate(logic.Or, "o", a, x)
	b.Output(o)
	g, err := New(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	xID, _ := g.Circuit().NetByName("x")
	if _, st := g.Generate(fault.Fault{Net: xID, Kind: fault.StuckAt0}); st != Untestable {
		t.Fatalf("x/sa0 should be redundant, got %v", st)
	}
	// x/sa1 is testable: a=0, b anything → O becomes 1 instead of 0.
	p, st := g.Generate(fault.Fault{Net: xID, Kind: fault.StuckAt1})
	if st != Found {
		t.Fatalf("x/sa1 should be testable, got %v", st)
	}
	if p.Inputs[0] {
		t.Errorf("x/sa1 needs a=0, got %+v", p)
	}
}

// verifyPattern confirms with the parallel fault simulator that the
// pattern detects the fault.
func verifyPattern(t *testing.T, c *circuit.Circuit, f fault.Fault, p Pattern) {
	t.Helper()
	fs, err := fault.New(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fs.Run([]fault.Fault{f}, [][]bool{p.Inputs})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Detected[f]; !ok {
		t.Fatalf("generated pattern does not detect %v (pattern %v)", f, p.Inputs)
	}
}

func TestGeneratedPatternsActuallyDetect(t *testing.T) {
	c, err := gen.ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	cn := g.Circuit()
	faults := fault.AllFaults(cn)
	found, untestable, aborted := 0, 0, 0
	for i, f := range faults {
		if i%7 != 0 { // sample the universe to keep the test quick
			continue
		}
		p, st := g.Generate(f)
		switch st {
		case Found:
			found++
			verifyPattern(t, cn, f, p)
		case Untestable:
			untestable++
		case Aborted:
			aborted++
		}
	}
	t.Logf("sampled: %d found, %d untestable, %d aborted", found, untestable, aborted)
	if found == 0 {
		t.Fatal("PODEM found nothing")
	}
	if aborted > found/2 {
		t.Errorf("too many aborts: %d vs %d found", aborted, found)
	}
}

func TestUntestableClaimsNeverContradictRandomSim(t *testing.T) {
	// Any fault random simulation detects must not be called untestable.
	c, err := gen.ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	cn := g.Circuit()
	faults := fault.AllFaults(cn)
	fs, err := fault.New(cn)
	if err != nil {
		t.Fatal(err)
	}
	vecs := vectors.Random(64, len(cn.Inputs), 11).Bits
	res, err := fs.Run(faults, vecs)
	if err != nil {
		t.Fatal(err)
	}
	// Check every detected fault: this is the soundness property, and a
	// sampled version once hid a real bug (dual-machine objectives that
	// only chased good-machine Xs).
	for f := range res.Detected {
		if _, st := g.Generate(f); st == Untestable {
			t.Fatalf("fault %v detected by random sim but called untestable", f)
		}
	}
}

func TestGenerateAllBeatsRandomCoverage(t *testing.T) {
	c, err := gen.ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	cn := g.Circuit()
	faults := fault.AllFaults(cn)
	sum, err := g.GenerateAll(faults)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ATPG: %d patterns, %d found, %d untestable, %d aborted",
		len(sum.Patterns), sum.Found, sum.Untestable, sum.Aborted)
	if sum.Found+sum.Untestable+sum.Aborted != len(faults) {
		t.Fatalf("accounting broken: %d+%d+%d != %d",
			sum.Found, sum.Untestable, sum.Aborted, len(faults))
	}
	// Grade the generated pattern set and compare against 128 random
	// vectors: ATPG must do better.
	fs, err := fault.New(cn)
	if err != nil {
		t.Fatal(err)
	}
	var pats [][]bool
	for _, p := range sum.Patterns {
		pats = append(pats, p.Inputs)
	}
	resA, err := fs.Run(faults, pats)
	if err != nil {
		t.Fatal(err)
	}
	resR, err := fs.Run(faults, vectors.Random(128, len(cn.Inputs), 1990).Bits)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("coverage: ATPG %.1f%% with %d patterns, random %.1f%% with 128",
		100*resA.Coverage(), len(pats), 100*resR.Coverage())
	if resA.Coverage() <= resR.Coverage() {
		t.Errorf("ATPG coverage %.3f not above random %.3f", resA.Coverage(), resR.Coverage())
	}
	// Every fault PODEM found must be detected by the pattern set.
	for f, st := range sum.PerFault {
		if st != Found {
			continue
		}
		if _, ok := resA.Detected[f]; !ok {
			t.Fatalf("fault %v marked found but pattern set misses it", f)
		}
	}
}

func TestSequentialRejected(t *testing.T) {
	b := circuit.NewBuilder("seq")
	q := b.FlipFlop("Q", circuit.NoNet)
	d := b.Gate(logic.Not, "D", q)
	b.BindFlipFlop(q, d)
	b.Output(d)
	if _, err := New(b.MustBuild()); err == nil {
		t.Fatal("expected rejection")
	}
}

func TestStatusString(t *testing.T) {
	if Found.String() != "found" || Untestable.String() != "untestable" ||
		Aborted.String() != "aborted" || Status(9).String() != "?" {
		t.Error("status strings wrong")
	}
}
