// Package atpg implements PODEM (path-oriented decision making) automatic
// test-pattern generation for single stuck-at faults in combinational
// circuits. It completes the testing tool-chain built on the paper's
// compiled-simulation machinery: SCOAP testability guides the backtrace,
// the generated patterns are verified by the parallel fault simulator,
// and faults PODEM proves untestable explain the coverage ceiling random
// vectors hit.
//
// The implementation uses the classic dual-machine formulation: the good
// and faulty circuits are evaluated side by side in three-valued logic
// (the fault site forced in the faulty machine), so the D/D′ calculus
// falls out of comparing the two values. Decisions are made only at
// primary inputs; implication is a full three-valued forward evaluation,
// which is simple and, at these circuit sizes, fast.
package atpg

import (
	"fmt"

	"udsim/internal/circuit"
	"udsim/internal/fault"
	"udsim/internal/levelize"
	"udsim/internal/logic"
	"udsim/internal/scoap"
)

// Status classifies the outcome for one fault.
type Status int

const (
	// Found means a detecting pattern was generated.
	Found Status = iota
	// Untestable means the search space was exhausted: no input
	// assignment detects the fault (it is redundant).
	Untestable
	// Aborted means the backtrack limit was hit before a conclusion.
	Aborted
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Found:
		return "found"
	case Untestable:
		return "untestable"
	case Aborted:
		return "aborted"
	}
	return "?"
}

// Pattern is a generated test: assigned primary-input values with
// don't-cares reported separately.
type Pattern struct {
	// Inputs is the assignment (don't-cares filled with false), indexed
	// like Circuit.Inputs.
	Inputs []bool
	// Care marks the inputs the pattern actually constrains.
	Care []bool
}

// Generator holds the per-circuit state for PODEM.
type Generator struct {
	c  *circuit.Circuit
	lv *levelize.Analysis
	sc *scoap.Analysis

	order []circuit.GateID

	good  []logic.V3
	bad   []logic.V3
	piVal []logic.V3 // current PI decisions (X = unassigned)

	// BacktrackLimit bounds the search per fault (default 2000).
	BacktrackLimit int
}

// New prepares a PODEM generator for a combinational circuit.
func New(c *circuit.Circuit) (*Generator, error) {
	if !c.Combinational() {
		return nil, fmt.Errorf("atpg: circuit %s is sequential; break flip-flops first", c.Name)
	}
	c = c.Normalize()
	lv, err := levelize.Analyze(c)
	if err != nil {
		return nil, err
	}
	sc, err := scoap.Analyze(c)
	if err != nil {
		return nil, err
	}
	return &Generator{
		c:              c,
		lv:             lv,
		sc:             sc,
		order:          lv.LevelOrder,
		good:           make([]logic.V3, c.NumNets()),
		bad:            make([]logic.V3, c.NumNets()),
		piVal:          make([]logic.V3, len(c.Inputs)),
		BacktrackLimit: 2000,
	}, nil
}

// Circuit returns the (normalized) circuit.
func (g *Generator) Circuit() *circuit.Circuit { return g.c }

// imply evaluates both machines in three-valued logic from the current
// PI assignment, forcing the fault site in the faulty machine.
func (g *Generator) imply(f fault.Fault) {
	for i := range g.good {
		g.good[i] = logic.VX
		g.bad[i] = logic.VX
	}
	for i, id := range g.c.Inputs {
		g.good[id] = g.piVal[i]
		g.bad[id] = g.piVal[i]
	}
	force := logic.V0
	if f.Kind == fault.StuckAt1 {
		force = logic.V1
	}
	if len(g.c.Net(f.Net).Drivers) == 0 {
		g.bad[f.Net] = force
	}
	ins := make([]logic.V3, 0, 8)
	for _, gid := range g.order {
		gate := g.c.Gate(gid)
		ins = ins[:0]
		for _, in := range gate.Inputs {
			ins = append(ins, g.good[in])
		}
		g.good[gate.Output] = gate.Type.Eval3(ins)
		ins = ins[:0]
		for _, in := range gate.Inputs {
			ins = append(ins, g.bad[in])
		}
		v := gate.Type.Eval3(ins)
		if gate.Output == f.Net {
			v = force
		}
		g.bad[gate.Output] = v
	}
	if len(g.c.Net(f.Net).Drivers) == 0 {
		g.bad[f.Net] = force // inputs are not re-evaluated, keep forced
	}
}

// detected reports whether some primary output differs with both values
// known.
func (g *Generator) detected() bool {
	for _, o := range g.c.Outputs {
		if g.good[o] != logic.VX && g.bad[o] != logic.VX && g.good[o] != g.bad[o] {
			return true
		}
	}
	return false
}

// excited reports whether the fault site currently carries a fault effect
// (good ≠ bad, both known).
func (g *Generator) excited(f fault.Fault) bool {
	return g.good[f.Net] != logic.VX && g.bad[f.Net] != logic.VX && g.good[f.Net] != g.bad[f.Net]
}

// dFrontier returns a gate whose output is still X in at least one
// machine but which has a fault effect on an input — the propagation
// frontier. It returns NoGate when the frontier is empty.
func (g *Generator) dFrontier() circuit.GateID {
	var best circuit.GateID = circuit.NoGate
	bestCO := int64(1) << 62
	for i := range g.c.Gates {
		gate := &g.c.Gates[i]
		out := gate.Output
		if g.good[out] != logic.VX && g.bad[out] != logic.VX && g.good[out] == g.bad[out] {
			continue
		}
		if g.good[out] != logic.VX && g.bad[out] != logic.VX {
			continue // already carries the effect
		}
		hasD := false
		for _, in := range gate.Inputs {
			if g.good[in] != logic.VX && g.bad[in] != logic.VX && g.good[in] != g.bad[in] {
				hasD = true
				break
			}
		}
		if !hasD {
			continue
		}
		// Prefer the most observable frontier gate.
		if co := g.sc.CO[out]; co < bestCO {
			bestCO = co
			best = gate.ID
		}
	}
	return best
}

// xPathExists reports whether some fault effect can still reach a primary
// output through nets that are undetermined in at least one machine — the
// classic X-path check that prunes hopeless subtrees early.
func (g *Generator) xPathExists(f fault.Fault) bool {
	// reachable[n]: the effect could appear on net n.
	reachable := make([]bool, g.c.NumNets())
	queue := make([]circuit.NetID, 0, 32)
	push := func(n circuit.NetID) {
		if !reachable[n] {
			reachable[n] = true
			queue = append(queue, n)
		}
	}
	for i := range g.c.Nets {
		id := circuit.NetID(i)
		if g.good[id] != logic.VX && g.bad[id] != logic.VX && g.good[id] != g.bad[id] {
			push(id)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if g.c.Net(n).IsOutput {
			return true
		}
		for _, gid := range g.c.Net(n).Fanout {
			out := g.c.Gate(gid).Output
			if reachable[out] {
				continue
			}
			// The effect can pass only if the output is not already
			// identically determined in both machines.
			if g.good[out] != logic.VX && g.bad[out] != logic.VX && g.good[out] == g.bad[out] {
				continue
			}
			push(out)
		}
	}
	return false
}

// objective returns the next (net, value) goal: excite the fault if it is
// not excited, otherwise feed a frontier gate a non-controlling value on
// one of its X inputs.
func (g *Generator) objective(f fault.Fault) (circuit.NetID, logic.V3, bool) {
	if !g.excited(f) {
		want := logic.V1
		if f.Kind == fault.StuckAt1 {
			want = logic.V0
		}
		if g.good[f.Net] != logic.VX && g.good[f.Net] != want {
			return 0, 0, false // fault site fixed to the stuck value: dead end
		}
		if g.good[f.Net] == logic.VX {
			return f.Net, want, true
		}
		// Site already at the right good value but bad is X (effect not
		// yet established): keep working on propagation below.
	}
	gid := g.dFrontier()
	if gid == circuit.NoGate {
		return 0, 0, false
	}
	gate := g.c.Gate(gid)
	noncontrol := logic.V1
	switch gate.Type.Base() {
	case logic.Or:
		noncontrol = logic.V0
	case logic.Xor:
		noncontrol = logic.V0 // any known value propagates through XOR
	}
	// Among the undetermined inputs, pick the one that is cheapest to
	// drive to the non-controlling value (SCOAP-guided, like the
	// backtrace itself). "Undetermined" means X in either machine: the
	// dual-machine formulation can leave an input known in the good
	// machine but X in the faulty one (the X arrives through the fault
	// cone while a controlling value fixes the good side), and the
	// propagation obstruction is then in the faulty machine.
	var pick circuit.NetID = circuit.NoNet
	var best int64 = 1 << 62
	for _, in := range gate.Inputs {
		if g.good[in] != logic.VX && g.bad[in] != logic.VX {
			continue
		}
		cost := g.sc.CC1[in]
		if noncontrol == logic.V0 {
			cost = g.sc.CC0[in]
		}
		if cost < best {
			best = cost
			pick = in
		}
	}
	if pick != circuit.NoNet {
		return pick, noncontrol, true
	}
	return 0, 0, false
}

// backtrace walks an objective up to an unassigned primary input,
// steering through the easiest-to-control inputs (SCOAP) and inverting
// the target value through inverting gates. It descends through nets
// that are X in either machine: an X in the faulty machine alone still
// grounds at an unassigned primary input (the machines share input
// values; only the fault site is forced).
func (g *Generator) backtrace(net circuit.NetID, val logic.V3) (pi int, v logic.V3, ok bool) {
	for steps := 0; steps < 4*g.c.NumNets()+8; steps++ {
		n := g.c.Net(net)
		if n.IsInput {
			for i, id := range g.c.Inputs {
				if id == net {
					if g.piVal[i] != logic.VX {
						return 0, 0, false // already decided: conflict
					}
					return i, val, true
				}
			}
			return 0, 0, false
		}
		if len(n.Drivers) == 0 {
			return 0, 0, false // constant or flip-flop boundary
		}
		gate := g.c.Gate(n.Drivers[0])
		if gate.Type.Inverting() {
			val = invert(val)
		}
		switch gate.Type {
		case logic.Const0, logic.Const1:
			return 0, 0, false
		}
		// Choose the undetermined input that is cheapest to set to val.
		var pick circuit.NetID = circuit.NoNet
		var best int64 = 1 << 62
		for _, in := range gate.Inputs {
			if g.good[in] != logic.VX && g.bad[in] != logic.VX {
				continue
			}
			cost := g.sc.CC1[in]
			if val == logic.V0 {
				cost = g.sc.CC0[in]
			}
			if cost < best {
				best = cost
				pick = in
			}
		}
		if pick == circuit.NoNet {
			return 0, 0, false
		}
		net = pick
	}
	return 0, 0, false
}

func invert(v logic.V3) logic.V3 {
	switch v {
	case logic.V0:
		return logic.V1
	case logic.V1:
		return logic.V0
	}
	return logic.VX
}

type decision struct {
	pi      int
	val     logic.V3
	flipped bool
}

// Generate runs PODEM for one fault.
func (g *Generator) Generate(f fault.Fault) (Pattern, Status) {
	if f.Net < 0 || int(f.Net) >= g.c.NumNets() {
		return Pattern{}, Untestable
	}
	for i := range g.piVal {
		g.piVal[i] = logic.VX
	}
	var stack []decision
	backtracks := 0
	for {
		g.imply(f)
		if g.detected() {
			return g.pattern(), Found
		}
		ok := true
		if g.excited(f) && !g.xPathExists(f) {
			ok = false // effect boxed in: no X-path to any output
		}
		var obj circuit.NetID
		var val logic.V3
		if ok {
			obj, val, ok = g.objective(f)
		}
		var pi int
		var piv logic.V3
		if ok {
			pi, piv, ok = g.backtrace(obj, val)
		}
		if ok {
			g.piVal[pi] = piv
			stack = append(stack, decision{pi, piv, false})
			continue
		}
		// Dead end: backtrack.
		for {
			if len(stack) == 0 {
				return Pattern{}, Untestable
			}
			top := &stack[len(stack)-1]
			if !top.flipped {
				backtracks++
				if backtracks > g.BacktrackLimit {
					return Pattern{}, Aborted
				}
				top.flipped = true
				top.val = invert(top.val)
				g.piVal[top.pi] = top.val
				break
			}
			g.piVal[top.pi] = logic.VX
			stack = stack[:len(stack)-1]
		}
	}
}

func (g *Generator) pattern() Pattern {
	p := Pattern{
		Inputs: make([]bool, len(g.c.Inputs)),
		Care:   make([]bool, len(g.c.Inputs)),
	}
	for i, v := range g.piVal {
		if v != logic.VX {
			p.Care[i] = true
			p.Inputs[i] = v == logic.V1
		}
	}
	return p
}

// Summary is the outcome of a whole-universe ATPG run.
type Summary struct {
	Patterns   []Pattern
	PerFault   map[fault.Fault]Status
	Found      int
	Untestable int
	Aborted    int
}

// GenerateAll runs PODEM for every fault in the list, skipping faults
// already detected by previously generated patterns (checked with the
// parallel fault simulator for honesty and speed).
func (g *Generator) GenerateAll(faults []fault.Fault) (*Summary, error) {
	fs, err := fault.New(g.c)
	if err != nil {
		return nil, err
	}
	sum := &Summary{PerFault: make(map[fault.Fault]Status, len(faults))}
	remaining := append([]fault.Fault(nil), faults...)
	for len(remaining) > 0 {
		f := remaining[0]
		p, st := g.Generate(f)
		sum.PerFault[f] = st
		switch st {
		case Untestable:
			sum.Untestable++
			remaining = remaining[1:]
			continue
		case Aborted:
			sum.Aborted++
			remaining = remaining[1:]
			continue
		}
		sum.Found++
		sum.Patterns = append(sum.Patterns, p)
		// Fault-drop everything the new pattern detects.
		res, err := fs.Run(remaining, [][]bool{p.Inputs})
		if err != nil {
			return nil, err
		}
		var keep []fault.Fault
		for _, r := range remaining {
			if _, hit := res.Detected[r]; hit {
				if r != f {
					sum.PerFault[r] = Found
					sum.Found++
				}
				continue
			}
			if r == f {
				continue // the pattern may need X-filling luck; it is recorded anyway
			}
			keep = append(keep, r)
		}
		remaining = keep
	}
	return sum, nil
}
