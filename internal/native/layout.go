package native

import (
	"math/bits"

	"udsim/internal/circuit"
	"udsim/internal/parsim"
	"udsim/internal/pcset"
	"udsim/internal/program"
)

func maxVars(init, sim *program.Program) int {
	if init.NumVars > sim.NumVars {
		return init.NumVars
	}
	return sim.NumVars
}

// ParallelLayout derives the child layout from a compiled parallel
// simulator: each primary input is a multi-word bit-field with the
// delayed-alignment split writeInputs uses, each primary output the
// top bit of its field (the settled value).
func ParallelLayout(s *parsim.Sim, c *circuit.Circuit) Layout {
	init, sim := s.Programs()
	l := Layout{
		WordBits: s.Config().WordBits,
		NumVars:  maxVars(init, sim),
		Inputs:   make([]InputField, len(c.Inputs)),
		Outputs:  make([]OutputBit, len(c.Outputs)),
	}
	for i := range c.Inputs {
		base, words, split := s.InputField(i)
		l.Inputs[i] = InputField{Base: base, Words: words, Split: int32(split)}
	}
	for i, id := range c.Outputs {
		slot, mask := s.FinalSlot(id)
		l.Outputs[i] = OutputBit{Slot: int32(slot), Bit: uint8(bits.TrailingZeros64(mask))}
	}
	return l
}

// PCSetLayout derives the child layout from a compiled PC-set
// simulator: each primary input is one broadcast word (its single PC
// element), each primary output bit 0 of its maximum PC element.
func PCSetLayout(s *pcset.Sim, c *circuit.Circuit) Layout {
	init, sim := s.Programs()
	l := Layout{
		WordBits: 64,
		NumVars:  maxVars(init, sim),
		Inputs:   make([]InputField, len(c.Inputs)),
		Outputs:  make([]OutputBit, len(c.Outputs)),
	}
	for i := range c.Inputs {
		l.Inputs[i] = InputField{Base: s.InputVar(i), Words: 1}
	}
	for i, id := range c.Outputs {
		slot, _ := s.FinalSlot(id)
		l.Outputs[i] = OutputBit{Slot: int32(slot)}
	}
	return l
}
