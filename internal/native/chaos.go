package native

// The parent-side chaos seam: where ChildChaos bakes misbehavior into
// the generated child, a Disruptor lets a drill attack a *well-behaved*
// child from outside — kill it mid-batch, corrupt the batch frame on
// the way out — so the supervisor's recovery is exercised against
// failures the child itself never volunteers. Production runs leave
// Config.Disrupt nil; the seam is consulted only on the batch path and
// costs one nil check.

// ChildHandle is the supervisor's live child as a Disruptor sees it.
type ChildHandle interface {
	// Pid returns the child's process id.
	Pid() int
	// Kill delivers SIGKILL to the child.
	Kill() error
}

// Disruptor is the parent-side chaos injector consulted once per batch.
type Disruptor interface {
	// MangleBatch may rewrite the encoded batch frame before it is
	// written to the child (the slice is the disruptor's to mutate);
	// returning it unchanged injects nothing.
	MangleBatch(seq uint32, frame []byte) []byte
	// BatchSent runs after the batch frame for seq has been written and
	// before results are read — Kill()ing the handle here is a SIGKILL
	// mid-batch.
	BatchSent(seq uint32, child ChildHandle)
}

// KillAtBatch is a Disruptor that SIGKILLs the child mid-batch the
// first time seq reaches Batch, then stays quiet — the respawned child
// must complete the replayed batch.
type KillAtBatch struct {
	Batch uint32
	fired bool
	// Kills counts delivered signals (test introspection).
	Kills int
}

// MangleBatch implements Disruptor (no frame corruption).
func (k *KillAtBatch) MangleBatch(seq uint32, frame []byte) []byte { return frame }

// BatchSent implements Disruptor.
func (k *KillAtBatch) BatchSent(seq uint32, child ChildHandle) {
	if !k.fired && seq >= k.Batch {
		k.fired = true
		k.Kills++
		child.Kill()
	}
}

// CorruptBatch is a Disruptor that flips a bit in the batch frame for
// sequence Batch every time it passes — the child rejects the CRC and
// exits, and because the corruption repeats on replay the supervisor is
// driven to quarantine.
type CorruptBatch struct {
	Batch uint32
	// Mangled counts corrupted frames (test introspection).
	Mangled int
}

// MangleBatch implements Disruptor.
func (c *CorruptBatch) MangleBatch(seq uint32, frame []byte) []byte {
	if seq == c.Batch && len(frame) > 9 {
		c.Mangled++
		frame[9] ^= 0x80
	}
	return frame
}

// BatchSent implements Disruptor.
func (c *CorruptBatch) BatchSent(seq uint32, child ChildHandle) {}
