package native

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"udsim/internal/circuit"
	"udsim/internal/gen"
	"udsim/internal/parsim"
	"udsim/internal/pcset"
	"udsim/internal/resilience"
	"udsim/internal/vectors"
)

func requireGo(t *testing.T) {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}
}

// drillPolicy keeps the drills fast: a short batch deadline (the wedge
// drill waits it out), two respawns, millisecond backoff.
func drillPolicy() resilience.Policy {
	return resilience.Policy{
		LevelBudget:  500 * time.Millisecond,
		MaxRetries:   2,
		RetryBackoff: time.Millisecond,
	}
}

// testConfig compiles name with the technique and returns the child
// config plus an in-process reference that maps a vector to its packed
// primary-output bits.
func testConfig(t *testing.T, name, technique string) (Config, func(vec []bool) []byte) {
	t.Helper()
	c, err := gen.ISCAS85(name)
	if err != nil {
		t.Fatal(err)
	}
	norm := c.Normalize()
	cfg := Config{
		Engine:      "native/" + technique,
		Technique:   technique,
		CircuitHash: HashBench(norm),
		Policy:      drillPolicy(),
	}
	var ref func(vec []bool) []byte
	switch technique {
	case "parallel":
		s, err := parsim.Compile(norm, parsim.Config{WordBits: 32})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Layout = ParallelLayout(s, norm)
		cfg.Init, cfg.Sim = s.Programs()
		ref = refFunc(norm, func(vec []bool) { s.ApplyVector(vec) }, s.Final)
	case "pcset":
		s, err := pcset.Compile(norm, nil)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Layout = PCSetLayout(s, norm)
		cfg.Init, cfg.Sim = s.Programs()
		ref = refFunc(norm, func(vec []bool) { s.ApplyVector(vec) }, s.Final)
	default:
		t.Fatalf("unknown technique %q", technique)
	}
	return cfg, ref
}

func refFunc(c *circuit.Circuit, apply func([]bool), final func(circuit.NetID) bool) func([]bool) []byte {
	return func(vec []bool) []byte {
		apply(vec)
		po := make([]bool, len(c.Outputs))
		for i, id := range c.Outputs {
			po[i] = final(id)
		}
		return packBits(nil, po)
	}
}

func newSupervisor(t *testing.T, cfg Config) *Supervisor {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// countWorkspaces counts udsim-native- temp dirs — the hygiene metric.
func countWorkspaces(t *testing.T) int {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(os.TempDir(), "udsim-native-*"))
	if err != nil {
		t.Fatal(err)
	}
	return len(matches)
}

func TestFrameCodec(t *testing.T) {
	payload := []byte{1, 2, 3, 250, 0}
	frame := appendFrame(nil, frameBatch, payload)
	typ, got, err := readFrame(bytes.NewReader(frame))
	if err != nil || typ != frameBatch || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: typ %d payload %v err %v", typ, got, err)
	}

	// CRC flip.
	bad := append([]byte(nil), frame...)
	bad[len(bad)-1] ^= 0x40
	if _, _, err := readFrame(bytes.NewReader(bad)); !errors.Is(err, errCRC) {
		t.Fatalf("corrupted frame: err %v, want errCRC", err)
	}

	// Truncation mid-frame.
	if _, _, err := readFrame(bytes.NewReader(frame[:len(frame)-2])); !errors.Is(err, errTruncated) {
		t.Fatalf("truncated frame: err %v, want errTruncated", err)
	}

	// Clean EOF at a frame boundary stays io.EOF.
	if _, _, err := readFrame(bytes.NewReader(nil)); err == nil || errors.Is(err, errTruncated) {
		t.Fatalf("empty stream: err %v, want bare EOF", err)
	}

	// Oversized payload declaration.
	huge := make([]byte, 8)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0x7f
	if _, _, err := readFrame(bytes.NewReader(huge)); !errors.Is(err, errOversized) {
		t.Fatalf("oversized frame: err %v, want errOversized", err)
	}
}

func TestPackBits(t *testing.T) {
	vec := []bool{true, false, false, true, true, false, false, false, true}
	p := packBits(nil, vec)
	if len(p) != 2 || p[0] != 0b00011001 || p[1] != 0b00000001 {
		t.Fatalf("packBits = %08b", p)
	}
	for i, b := range vec {
		if Bit(p, i) != b {
			t.Fatalf("Bit(%d) = %v, want %v", i, Bit(p, i), b)
		}
	}
}

// TestBitIdentity drives c432 through the native child with both
// techniques across several batches and compares every vector's packed
// outputs against the in-process engine. Close must remove the
// workspace.
func TestBitIdentity(t *testing.T) {
	requireGo(t)
	for _, technique := range []string{"parallel", "pcset"} {
		t.Run(technique, func(t *testing.T) {
			cfg, ref := testConfig(t, "c432", technique)
			s := newSupervisor(t, cfg)
			dir := s.Dir()
			if _, err := os.Stat(dir); err != nil {
				t.Fatalf("workspace missing while open: %v", err)
			}
			vecs := vectors.Random(48, len(cfg.Layout.Inputs), 1990)
			for start := 0; start < vecs.Len(); start += 16 {
				batch := vecs.Bits[start : start+16]
				got, err := s.RunBatch(batch)
				if err != nil {
					t.Fatalf("RunBatch: %v", err)
				}
				for i, vec := range batch {
					if want := ref(vec); !bytes.Equal(got[i], want) {
						t.Fatalf("vector %d: native %08b, in-process %08b", start+i, got[i], want)
					}
				}
			}
			if err := s.Ping(); err != nil {
				t.Fatalf("Ping: %v", err)
			}
			if s.State() != StateServing {
				t.Fatalf("state = %v, want serving", s.State())
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := os.Stat(dir); !os.IsNotExist(err) {
				t.Fatalf("workspace %s survived Close", dir)
			}
		})
	}
}

// TestRespawnOnCrash bakes a child that exits mid-stream on its second
// batch: the supervisor must respawn and the replayed batch must come
// back bit-identical (settled outputs depend only on the vector).
func TestRespawnOnCrash(t *testing.T) {
	requireGo(t)
	cfg, ref := testConfig(t, "c432", "parallel")
	cfg.Chaos = ChildChaos{CrashAtBatch: 2}
	s := newSupervisor(t, cfg)
	vecs := vectors.Random(24, len(cfg.Layout.Inputs), 7)
	for start := 0; start < vecs.Len(); start += 8 {
		batch := vecs.Bits[start : start+8]
		got, err := s.RunBatch(batch)
		if err != nil {
			t.Fatalf("batch at %d: %v", start, err)
		}
		for i, vec := range batch {
			if want := ref(vec); !bytes.Equal(got[i], want) {
				t.Fatalf("vector %d diverged after respawn", start+i)
			}
		}
	}
	f := s.LastFault()
	if f == nil || f.Kind != resilience.FaultSubprocess {
		t.Fatalf("LastFault = %v, want subprocess", f)
	}
	if f.ExitStatus != 7 {
		t.Fatalf("ExitStatus = %d, want 7", f.ExitStatus)
	}
	if s.Quarantined() {
		t.Fatal("respawn should have recovered, not quarantined")
	}
}

// TestQuarantineOnPersistentCrash bakes a child that dies on every
// first batch: MaxRetries respawns hit the same wall and the supervisor
// must quarantine with the typed fault.
func TestQuarantineOnPersistentCrash(t *testing.T) {
	requireGo(t)
	cfg, _ := testConfig(t, "c432", "parallel")
	cfg.Chaos = ChildChaos{CrashAtBatch: 1}
	s := newSupervisor(t, cfg)
	vecs := vectors.Random(4, len(cfg.Layout.Inputs), 7)
	_, err := s.RunBatch(vecs.Bits)
	f, ok := resilience.AsFault(err)
	if !ok || f.Kind != resilience.FaultSubprocess {
		t.Fatalf("err = %v, want subprocess fault", err)
	}
	if !s.Quarantined() {
		t.Fatalf("state = %v, want quarantined", s.State())
	}
	// A quarantined supervisor refuses further batches with a typed,
	// non-transient fault.
	_, err = s.RunBatch(vecs.Bits)
	if f, ok := resilience.AsFault(err); !ok || f.Transient() {
		t.Fatalf("post-quarantine err = %v, want non-transient fault", err)
	}
}

// TestProtocolFaults drives the baked framing misbehaviors — corrupt
// CRC, truncated results frame — and asserts the protocol fault kind
// with frame coordinates.
func TestProtocolFaults(t *testing.T) {
	requireGo(t)
	cases := []struct {
		name  string
		chaos ChildChaos
	}{
		{"corrupt-crc", ChildChaos{CorruptCRCAtBatch: 1}},
		{"truncated", ChildChaos{TruncateAtBatch: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, _ := testConfig(t, "c432", "parallel")
			cfg.Chaos = tc.chaos
			s := newSupervisor(t, cfg)
			vecs := vectors.Random(4, len(cfg.Layout.Inputs), 7)
			_, err := s.RunBatch(vecs.Bits)
			f, ok := resilience.AsFault(err)
			if !ok || f.Kind != resilience.FaultProtocol {
				t.Fatalf("err = %v, want protocol fault", err)
			}
			if f.Frame != 1 {
				t.Fatalf("Frame = %d, want 1", f.Frame)
			}
			if !s.Quarantined() {
				t.Fatal("baked protocol violation repeats on respawn; want quarantine")
			}
		})
	}
}

// TestWedgedChild bakes a child that answers the handshake and then
// never answers a batch: the per-batch deadline must fire as a
// deadline fault wrapping ErrChildStall — never a hang.
func TestWedgedChild(t *testing.T) {
	requireGo(t)
	cfg, _ := testConfig(t, "c432", "parallel")
	cfg.Chaos = ChildChaos{WedgeAtBatch: 1}
	cfg.Policy.LevelBudget = 200 * time.Millisecond
	s := newSupervisor(t, cfg)
	vecs := vectors.Random(2, len(cfg.Layout.Inputs), 7)
	_, err := s.RunBatch(vecs.Bits)
	f, ok := resilience.AsFault(err)
	if !ok || f.Kind != resilience.FaultDeadline || !errors.Is(f.Err, resilience.ErrChildStall) {
		t.Fatalf("err = %v, want deadline fault wrapping ErrChildStall", err)
	}
	if !s.Quarantined() {
		t.Fatal("wedge repeats on respawn; want quarantine")
	}
}

// TestStderrFlood bakes a child that floods ~1MiB of stderr and exits:
// the drain must never deadlock the supervisor, and the fault must
// carry the exit status and a capped stderr tail.
func TestStderrFlood(t *testing.T) {
	requireGo(t)
	cfg, _ := testConfig(t, "c432", "parallel")
	cfg.Chaos = ChildChaos{FloodStderrAtBatch: 1}
	s := newSupervisor(t, cfg)
	vecs := vectors.Random(4, len(cfg.Layout.Inputs), 7)
	_, err := s.RunBatch(vecs.Bits)
	f, ok := resilience.AsFault(err)
	if !ok || f.Kind != resilience.FaultSubprocess {
		t.Fatalf("err = %v, want subprocess fault", err)
	}
	if f.ExitStatus != 3 {
		t.Fatalf("ExitStatus = %d, want 3", f.ExitStatus)
	}
	if len(f.Stderr) == 0 || len(f.Stderr) > tailCap {
		t.Fatalf("stderr tail %d bytes, want (0, %d]", len(f.Stderr), tailCap)
	}
	if !strings.Contains(f.Stderr, "zzzz") {
		t.Fatalf("stderr tail lost the flood: %.40q", f.Stderr)
	}
}

// TestKillMidBatch uses the parent-side disruptor to SIGKILL a
// well-behaved child right after a batch is sent: the supervisor must
// classify the death as a subprocess fault, respawn once, and the
// replayed batch must come back bit-identical.
func TestKillMidBatch(t *testing.T) {
	requireGo(t)
	cfg, ref := testConfig(t, "c432", "parallel")
	kill := &KillAtBatch{Batch: 2}
	cfg.Disrupt = kill
	s := newSupervisor(t, cfg)
	vecs := vectors.Random(24, len(cfg.Layout.Inputs), 42)
	for start := 0; start < vecs.Len(); start += 8 {
		batch := vecs.Bits[start : start+8]
		got, err := s.RunBatch(batch)
		if err != nil {
			t.Fatalf("batch at %d: %v", start, err)
		}
		for i, vec := range batch {
			if want := ref(vec); !bytes.Equal(got[i], want) {
				t.Fatalf("vector %d diverged after SIGKILL respawn", start+i)
			}
		}
	}
	if kill.Kills != 1 {
		t.Fatalf("kills = %d, want 1", kill.Kills)
	}
	f := s.LastFault()
	if f == nil || f.Kind != resilience.FaultSubprocess || f.ExitStatus != -1 {
		t.Fatalf("LastFault = %v, want signaled subprocess fault", f)
	}
	if s.Quarantined() {
		t.Fatal("one SIGKILL must not quarantine")
	}
}

// TestBuildFailure points the supervisor at a compiler that always
// fails: New must return a permanent fault wrapping ErrChildBuild and
// leave no orphan workspace.
func TestBuildFailure(t *testing.T) {
	before := countWorkspaces(t)
	cfg, _ := testConfig(t, "c432", "parallel")
	cfg.GoTool = "false" // exits 1 without compiling anything
	_, err := New(cfg)
	if err == nil {
		t.Fatal("New succeeded with a failing compiler")
	}
	f, ok := resilience.AsFault(err)
	if !ok || f.Kind != resilience.FaultSubprocess || !errors.Is(f, resilience.ErrChildBuild) {
		t.Fatalf("err = %v, want subprocess fault wrapping ErrChildBuild", err)
	}
	if f.Transient() {
		t.Fatal("a build failure must not be retried")
	}
	if after := countWorkspaces(t); after != before {
		t.Fatalf("build failure leaked workspaces: %d -> %d", before, after)
	}
}

// TestWorkspaceHygiene opens and closes 100 workspaces and asserts no
// udsim-native- directory survives — the temp-dir discipline Close and
// the build-failure path must both honor.
func TestWorkspaceHygiene(t *testing.T) {
	cfg, _ := testConfig(t, "c432", "parallel")
	files, err := generateChild(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := countWorkspaces(t)
	for i := 0; i < 100; i++ {
		dir, err := writeWorkspace(files)
		if err != nil {
			t.Fatal(err)
		}
		for name := range files {
			if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
		}
		os.RemoveAll(dir)
	}
	if after := countWorkspaces(t); after != before {
		t.Fatalf("open/close loop leaked workspaces: %d -> %d", before, after)
	}
}

// TestHandshakeMismatch rejects a child whose baked circuit hash does
// not match the supervisor's — a stale binary must never serve. The
// child is built with one hash, then the supervisor's expectation is
// swapped before the spawn so the hello check has to catch it.
func TestHandshakeMismatch(t *testing.T) {
	requireGo(t)
	cfg, _ := testConfig(t, "c432", "parallel")
	s := &Supervisor{cfg: cfg, state: StateBuilding}
	tool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}
	s.goTool = tool
	if err := s.build(); err != nil {
		t.Fatalf("build: %v", err)
	}
	defer s.Close()
	s.cfg.CircuitHash = "0000deadbeef"
	f := s.spawn()
	if f == nil {
		t.Fatal("handshake accepted a mismatched circuit hash")
	}
	if f.Kind != resilience.FaultProtocol {
		t.Fatalf("fault = %v, want protocol", f)
	}
	s.killChild()
}
