package native

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"udsim/internal/bench85"
	"udsim/internal/circuit"
	"udsim/internal/codegen/ir"
	"udsim/internal/program"
)

// InputField describes how one primary input lands in the child's state
// arena: Base is the first state-word index of the input's bit-field,
// Words its word count, and Split the bit offset below which the field
// keeps the previous vector's value (the parallel technique's delayed
// alignment; 0 for the whole-field write the PC-set method uses).
type InputField struct {
	Base, Words, Split int32
}

// OutputBit locates one primary output's settled value: state word Slot,
// bit Bit.
type OutputBit struct {
	Slot int32
	Bit  uint8
}

// Layout is the engine state layout the generated child driver bakes in.
type Layout struct {
	// WordBits is the logical word width W (8, 16, 32 or 64).
	WordBits int
	// NumVars sizes the child's state arena.
	NumVars int
	// Inputs maps primary input index to its broadcast field.
	Inputs []InputField
	// Outputs maps primary output index to its settled bit.
	Outputs []OutputBit
}

// ChildChaos bakes deterministic misbehaviors into the generated child
// driver — the chaos drills' way of producing a child that crashes,
// wedges, truncates or corrupts on cue. The zero value generates a
// well-behaved child. Batch coordinates are 1-based sequence numbers;
// because a respawned child replays the same batch, a baked misbehavior
// repeats on every respawn and drives the supervisor to quarantine.
type ChildChaos struct {
	// CrashAtBatch makes the child os.Exit(7) instead of answering the
	// Nth batch it sees.
	CrashAtBatch int
	// WedgeAfterHandshake makes the child answer the hello and then
	// block forever without reading another frame.
	WedgeAfterHandshake bool
	// WedgeAtBatch makes the child read the Nth batch and then block
	// forever without answering it.
	WedgeAtBatch int
	// TruncateAtBatch makes the child write half of the Nth results
	// frame and exit(4) — a mid-frame EOF at the parent.
	TruncateAtBatch int
	// CorruptCRCAtBatch makes the child flip the CRC of the Nth results
	// frame.
	CorruptCRCAtBatch int
	// FloodStderrAtBatch makes the child write ~1MiB of noise to stderr
	// and exit(3) instead of answering the Nth batch — the classic
	// pipe-full deadlock if the parent does not drain stderr.
	FloodStderrAtBatch int
}

func (c ChildChaos) zero() bool { return c == ChildChaos{} }

// childChunk bounds the statements per generated function: go's SSA
// passes are superlinear on single huge function bodies (the PC-set
// emission for c6288 is >100k statements), so the driver splits each
// program into chunked functions called in order.
const childChunk = 4096

// HashBench returns the hex sha256 of the circuit's canonical .bench
// rendering, skipping comments and blank lines — the same content
// identity internal/serve uses, baked into the child's handshake so a
// stale binary for a different netlist can never serve vectors.
func HashBench(c *circuit.Circuit) string {
	var buf bytes.Buffer
	if err := bench85.Write(&buf, c); err != nil {
		// Write only fails on io errors; a bytes.Buffer has none.
		return "unhashable:" + err.Error()
	}
	h := sha256.New()
	for _, line := range strings.Split(buf.String(), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		h.Write([]byte(line))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// chunkProgram slices prog into childChunk-sized sub-programs named
// name_0, name_1, ... so no generated function body grows unboundedly.
func chunkProgram(name string, prog *program.Program) []ir.Source {
	var units []ir.Source
	code := prog.Code
	for i := 0; len(units) == 0 || i < len(code); i += childChunk {
		end := i + childChunk
		if end > len(code) {
			end = len(code)
		}
		units = append(units, ir.Source{
			Name: fmt.Sprintf("%s_%d", name, len(units)),
			Prog: &program.Program{
				WordBits: prog.WordBits,
				NumVars:  prog.NumVars,
				Code:     code[i:end],
				VarNames: prog.VarNames,
			},
		})
	}
	return units
}

// generateChild renders the three files of the self-contained child
// module: go.mod (no dependencies, so the build never touches the
// network), gen.go (the validated straight-line simulation code) and
// main.go (the protocol driver with the layout tables baked in).
func generateChild(cfg *Config) (map[string]string, error) {
	initUnits := chunkProgram("initvec", cfg.Init)
	simUnits := chunkProgram("simvec", cfg.Sim)
	irr, err := ir.Build(append(append([]ir.Source{}, initUnits...), simUnits...))
	if err != nil {
		return nil, err
	}
	gen, _, err := ir.Render(ir.Go, "main", irr)
	if err != nil {
		return nil, err
	}
	return map[string]string{
		"go.mod":  "module nativechild\n\ngo 1.22\n",
		"gen.go":  gen,
		"main.go": renderDriver(cfg, len(initUnits), len(simUnits)),
	}, nil
}

// renderDriver emits the child's protocol driver. It mirrors the parent
// codec in proto.go (protoVersion pins the pair) and the in-process
// apply order: init program, then primary-input broadcast, then sim
// program — per vector.
func renderDriver(cfg *Config, initChunks, simChunks int) string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }

	w("// Generated protocol driver for the udsim native backend.\n")
	w("package main\n\n")
	w("import (\n\t\"bufio\"\n\t\"encoding/binary\"\n\t\"hash/crc32\"\n\t\"io\"\n\t\"os\"\n\t\"time\"\n)\n\n")
	w("type word = uint%d\n\n", cfg.Layout.WordBits)
	w("const (\n")
	w("\tprotoVersion = %d\n", protoVersion)
	w("\twordBits     = %d\n", cfg.Layout.WordBits)
	w("\tnumVars      = %d\n", cfg.Layout.NumVars)
	w("\tnumPI        = %d\n", len(cfg.Layout.Inputs))
	w("\tnumPO        = %d\n", len(cfg.Layout.Outputs))
	w("\tcircuitHash  = %q\n", cfg.CircuitHash)
	w("\ttechnique    = %q\n\n", cfg.Technique)
	w("\tframeHello   = %d\n", frameHello)
	w("\tframeBatch   = %d\n", frameBatch)
	w("\tframeResults = %d\n", frameResults)
	w("\tframePing    = %d\n", framePing)
	w("\tframePong    = %d\n", framePong)
	w("\tframeQuit    = %d\n\n", frameQuit)
	w("\tchaosCrashAtBatch       = %d\n", cfg.Chaos.CrashAtBatch)
	w("\tchaosWedgeAfterHello    = %v\n", cfg.Chaos.WedgeAfterHandshake)
	w("\tchaosWedgeAtBatch       = %d\n", cfg.Chaos.WedgeAtBatch)
	w("\tchaosTruncateAtBatch    = %d\n", cfg.Chaos.TruncateAtBatch)
	w("\tchaosCorruptCRCAtBatch  = %d\n", cfg.Chaos.CorruptCRCAtBatch)
	w("\tchaosFloodStderrAtBatch = %d\n", cfg.Chaos.FloodStderrAtBatch)
	w(")\n\n")

	w("var inBase = %s\n", int32Slice(inputField(cfg.Layout.Inputs, func(f InputField) int32 { return f.Base })))
	w("var inWords = %s\n", int32Slice(inputField(cfg.Layout.Inputs, func(f InputField) int32 { return f.Words })))
	w("var inSplit = %s\n", int32Slice(inputField(cfg.Layout.Inputs, func(f InputField) int32 { return f.Split })))
	w("var outSlot = %s\n", int32Slice(outputField(cfg.Layout.Outputs, func(o OutputBit) int32 { return o.Slot })))
	w("var outBit = %s\n\n", int32Slice(outputField(cfg.Layout.Outputs, func(o OutputBit) int32 { return int32(o.Bit) })))

	w("func runInit(st []word) {\n")
	for i := 0; i < initChunks; i++ {
		w("\tinitvec_%d(st)\n", i)
	}
	w("}\n\n")
	w("func runSim(st []word) {\n")
	for i := 0; i < simChunks; i++ {
		w("\tsimvec_%d(st)\n", i)
	}
	w("}\n\n")

	w(`// applyInputs broadcasts the packed primary-input bits into the state
// arena exactly like the in-process engine: bits below an input's split
// offset keep the previous vector's value (delayed alignment).
func applyInputs(st []word, pi []byte, prevPI []bool) {
	const full = ^word(0)
	for i := 0; i < numPI; i++ {
		nv := pi[i>>3]>>(uint(i)&7)&1 == 1
		var newW word
		if nv {
			newW = full
		}
		base, words, split := inBase[i], inWords[i], int(inSplit[i])
		if split <= 0 {
			for w := int32(0); w < words; w++ {
				st[base+w] = newW
			}
		} else {
			var prevW word
			if prevPI[i] {
				prevW = full
			}
			for w := int32(0); w < words; w++ {
				lo := int(w) * wordBits
				switch {
				case lo+wordBits <= split:
					st[base+w] = prevW
				case lo >= split:
					st[base+w] = newW
				default:
					pm := word(1)<<uint(split-lo) - 1
					st[base+w] = prevW&pm | newW&^pm
				}
			}
		}
		prevPI[i] = nv
	}
}

func packOutputs(st []word, po []byte) {
	for i := range po {
		po[i] = 0
	}
	for i := 0; i < numPO; i++ {
		if st[outSlot[i]]>>uint(outBit[i])&1 == 1 {
			po[i>>3] |= 1 << (uint(i) & 7)
		}
	}
}

func writeFrame(w io.Writer, typ byte, payload []byte) error {
	buf := make([]byte, 0, 9+len(payload))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, typ)
	buf = append(buf, payload...)
	crc := crc32.ChecksumIEEE(buf[4:])
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	_, err := w.Write(buf)
	return err
}

func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > 16<<20 {
		os.Exit(2)
	}
	body := make([]byte, 1+n+4)
	body[0] = hdr[4]
	if _, err := io.ReadFull(r, body[1:]); err != nil {
		return 0, nil, err
	}
	if crc32.ChecksumIEEE(body[:1+n]) != binary.LittleEndian.Uint32(body[1+n:]) {
		os.Exit(2)
	}
	return hdr[4], body[1 : 1+n], nil
}

func helloPayload() []byte {
	p := make([]byte, 0, 64)
	for _, v := range [...]uint32{protoVersion, wordBits, numVars, numPI, numPO} {
		p = binary.LittleEndian.AppendUint32(p, v)
	}
	for _, s := range [...]string{circuitHash, technique} {
		p = binary.LittleEndian.AppendUint32(p, uint32(len(s)))
		p = append(p, s...)
	}
	return p
}

// wedge hangs forever without tripping the runtime deadlock detector
// (a bare select{} in a single-goroutine program exits 2 with "all
// goroutines are asleep", which is a crash, not a stall).
func wedge() {
	for {
		time.Sleep(time.Hour)
	}
}

func main() {
	in := bufio.NewReaderSize(os.Stdin, 1<<16)
	out := bufio.NewWriterSize(os.Stdout, 1<<16)
	st := make([]word, numVars)
	prevPI := make([]bool, numPI)
	piBytes := (numPI + 7) / 8
	poBytes := (numPO + 7) / 8
	if err := writeFrame(out, frameHello, helloPayload()); err != nil {
		os.Exit(2)
	}
	out.Flush()
	if chaosWedgeAfterHello {
		wedge()
	}
	batches := 0
	for {
		typ, payload, err := readFrame(in)
		if err == io.EOF {
			return
		}
		if err != nil {
			os.Exit(2)
		}
		switch typ {
		case framePing:
			writeFrame(out, framePong, payload)
			out.Flush()
		case frameQuit:
			return
		case frameBatch:
			batches++
			if len(payload) < 8 {
				os.Exit(2)
			}
			seq := binary.LittleEndian.Uint32(payload)
			count := int(binary.LittleEndian.Uint32(payload[4:]))
			bits := payload[8:]
			if count < 0 || len(bits) != count*piBytes {
				os.Exit(2)
			}
			if batches == chaosCrashAtBatch {
				os.Exit(7)
			}
			if batches == chaosWedgeAtBatch {
				wedge()
			}
			if batches == chaosFloodStderrAtBatch {
				noise := make([]byte, 64<<10)
				for i := range noise {
					noise[i] = 'z'
				}
				for i := 0; i < 16; i++ {
					os.Stderr.Write(noise)
				}
				os.Exit(3)
			}
			res := make([]byte, 8+count*poBytes)
			binary.LittleEndian.PutUint32(res, seq)
			binary.LittleEndian.PutUint32(res[4:], uint32(count))
			for v := 0; v < count; v++ {
				runInit(st)
				applyInputs(st, bits[v*piBytes:], prevPI)
				runSim(st)
				packOutputs(st, res[8+v*poBytes:8+(v+1)*poBytes])
			}
			frame := make([]byte, 0, 9+len(res))
			frame = binary.LittleEndian.AppendUint32(frame, uint32(len(res)))
			frame = append(frame, frameResults)
			frame = append(frame, res...)
			crc := crc32.ChecksumIEEE(frame[4:])
			if batches == chaosCorruptCRCAtBatch {
				crc = ^crc
			}
			frame = binary.LittleEndian.AppendUint32(frame, crc)
			if batches == chaosTruncateAtBatch {
				out.Write(frame[:len(frame)/2])
				out.Flush()
				os.Exit(4)
			}
			out.Write(frame)
			out.Flush()
		default:
			os.Exit(2)
		}
	}
}
`)
	return b.String()
}

func inputField(fs []InputField, get func(InputField) int32) []int32 {
	out := make([]int32, len(fs))
	for i, f := range fs {
		out[i] = get(f)
	}
	return out
}

func outputField(os []OutputBit, get func(OutputBit) int32) []int32 {
	out := make([]int32, len(os))
	for i, o := range os {
		out[i] = get(o)
	}
	return out
}

// int32Slice renders a []int32 literal.
func int32Slice(vals []int32) string {
	var b strings.Builder
	b.WriteString("[]int32{")
	for i, v := range vals {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteString("}")
	return b.String()
}
