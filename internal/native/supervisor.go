package native

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"udsim/internal/obs"
	"udsim/internal/program"
	"udsim/internal/resilience"
)

// State is the supervisor's lifecycle position.
type State int

const (
	// StateBuilding: the child module is being written and `go build`-ed.
	StateBuilding State = iota
	// StateHandshake: the child is spawned and the hello frame pending.
	StateHandshake
	// StateServing: the handshake verified; batches flow.
	StateServing
	// StateRespawning: a fault killed the child; backoff and respawn are
	// in progress.
	StateRespawning
	// StateQuarantined: MaxRetries exhausted; the child stays dead and
	// the caller must fall back to the in-process engine.
	StateQuarantined
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateBuilding:
		return "building"
	case StateHandshake:
		return "handshake"
	case StateServing:
		return "serving"
	case StateRespawning:
		return "respawning"
	case StateQuarantined:
		return "quarantined"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Config configures a Supervisor.
type Config struct {
	// Engine names the backend in fault witnesses ("native/parallel").
	Engine string
	// Technique is the handshake technique tag ("parallel", "pcset").
	Technique string
	// CircuitHash is the canonical circuit identity the child must echo
	// (see HashBench).
	CircuitHash string
	// Layout is the engine state layout baked into the child driver.
	Layout Layout
	// Init and Sim are the validated compiled programs the child renders
	// and runs — init first, inputs broadcast, then sim, per vector.
	Init, Sim *program.Program
	// Policy supplies the per-batch deadline (LevelBudget), the respawn
	// budget (MaxRetries) and the backoff schedule (RetryBackoff).
	Policy resilience.Policy
	// BuildTimeout bounds the out-of-process `go build` and the
	// handshake read; 0 means two minutes.
	BuildTimeout time.Duration
	// GoTool is the go binary to build with; "" resolves from PATH.
	GoTool string
	// Chaos bakes deterministic misbehaviors into the child (drills).
	Chaos ChildChaos
	// Disrupt is the parent-side chaos seam (drills); nil in production.
	Disrupt Disruptor
	// Obs receives the udsim_native_* counters; may be nil.
	Obs *obs.Observer
}

func (c *Config) buildTimeout() time.Duration {
	if c.BuildTimeout <= 0 {
		return 2 * time.Minute
	}
	return c.BuildTimeout
}

// Supervisor owns one native child's full lifecycle. It is not safe for
// concurrent use — like the engines it backs, one goroutine drives it.
type Supervisor struct {
	cfg      Config
	goTool   string
	dir      string
	bin      string
	state    State
	seq      uint32
	pingSeq  uint32
	child    *childProc
	lastExit int
	lastTail string
	last     *resilience.EngineFault
	buildDur time.Duration
	closed   bool
}

type childProc struct {
	cmd    *exec.Cmd
	stdin  *os.File
	stdout *os.File
	br     *bufio.Reader
	stderr *stderrRing
}

// Pid implements ChildHandle.
func (c *childProc) Pid() int { return c.cmd.Process.Pid }

// Kill implements ChildHandle.
func (c *childProc) Kill() error { return c.cmd.Process.Kill() }

// New generates the child module, builds it out of process under an
// os.MkdirTemp workspace, spawns the child and verifies the handshake.
// Any failure removes the workspace and returns a typed
// *resilience.EngineFault (ErrChildBuild for build failures, which are
// permanent). Close releases the workspace.
func New(cfg Config) (*Supervisor, error) {
	s := &Supervisor{cfg: cfg, state: StateBuilding}
	if err := s.checkLayout(); err != nil {
		return nil, err
	}
	s.goTool = cfg.GoTool
	if s.goTool == "" {
		tool, err := exec.LookPath("go")
		if err != nil {
			return nil, fmt.Errorf("native: go toolchain not on PATH: %w", err)
		}
		s.goTool = tool
	}
	if err := s.build(); err != nil {
		return nil, err
	}
	if f := s.spawn(); f != nil {
		s.removeWorkspace()
		return nil, f
	}
	return s, nil
}

func (s *Supervisor) checkLayout() error {
	l := &s.cfg.Layout
	switch l.WordBits {
	case 8, 16, 32, 64:
	default:
		return fmt.Errorf("native: unsupported word width %d", l.WordBits)
	}
	if l.NumVars <= 0 || len(l.Inputs) == 0 || len(l.Outputs) == 0 {
		return fmt.Errorf("native: degenerate layout (%d vars, %d inputs, %d outputs)",
			l.NumVars, len(l.Inputs), len(l.Outputs))
	}
	if s.cfg.Init == nil || s.cfg.Sim == nil {
		return errors.New("native: missing compiled programs")
	}
	return nil
}

// build writes the workspace and runs `go build` with the build
// deadline; on failure the workspace is removed before returning.
func (s *Supervisor) build() error {
	files, err := generateChild(&s.cfg)
	if err != nil {
		return err
	}
	dir, err := writeWorkspace(files)
	if err != nil {
		return err
	}
	s.dir = dir
	s.bin = filepath.Join(dir, "child")
	start := time.Now()
	cmd := exec.Command(s.goTool, "build", "-o", s.bin, ".")
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	timer := time.AfterFunc(s.cfg.buildTimeout(), func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
	})
	err = cmd.Run()
	timedOut := !timer.Stop()
	s.buildDur = time.Since(start)
	if s.cfg.Obs != nil {
		s.cfg.Obs.AddNativeBuild(s.buildDur)
	}
	if err != nil {
		s.removeWorkspace()
		cause := fmt.Errorf("%w: %v", resilience.ErrChildBuild, err)
		if timedOut {
			cause = fmt.Errorf("%w: timed out after %v", resilience.ErrChildBuild, s.cfg.buildTimeout())
		}
		return resilience.Subprocess(s.cfg.Engine, -1, exitCode(err), tailOf(out.String()), cause)
	}
	return nil
}

// writeWorkspace creates the temp-dir module and writes the child
// sources into it; on any write failure the directory is removed.
func writeWorkspace(files map[string]string) (string, error) {
	dir, err := os.MkdirTemp("", "udsim-native-")
	if err != nil {
		return "", err
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			os.RemoveAll(dir)
			return "", err
		}
	}
	return dir, nil
}

func (s *Supervisor) removeWorkspace() {
	if s.dir != "" {
		os.RemoveAll(s.dir)
		s.dir = ""
	}
}

// spawn starts the child and verifies its handshake. On failure the
// child is reaped and a typed fault returned.
func (s *Supervisor) spawn() *resilience.EngineFault {
	s.state = StateHandshake
	stdinR, stdinW, err := os.Pipe()
	if err != nil {
		return resilience.Subprocess(s.cfg.Engine, -1, -1, "", err)
	}
	stdoutR, stdoutW, err := os.Pipe()
	if err != nil {
		stdinR.Close()
		stdinW.Close()
		return resilience.Subprocess(s.cfg.Engine, -1, -1, "", err)
	}
	ring := &stderrRing{}
	cmd := exec.Command(s.bin)
	cmd.Stdin = stdinR
	cmd.Stdout = stdoutW
	cmd.Stderr = ring
	if err := cmd.Start(); err != nil {
		stdinR.Close()
		stdinW.Close()
		stdoutR.Close()
		stdoutW.Close()
		return resilience.Subprocess(s.cfg.Engine, -1, -1, "", err)
	}
	stdinR.Close()
	stdoutW.Close()
	s.child = &childProc{
		cmd: cmd, stdin: stdinW, stdout: stdoutR,
		br: bufio.NewReaderSize(stdoutR, 1<<16), stderr: ring,
	}
	stdoutR.SetReadDeadline(time.Now().Add(s.cfg.buildTimeout()))
	typ, payload, err := readFrame(s.child.br)
	if err != nil {
		return s.fault(-1, fmt.Errorf("native: handshake: %w", err))
	}
	s.countFrames(0, 1)
	if typ != frameHello {
		return s.protoFault(-1, fmt.Errorf("native: handshake: unexpected frame type %d", typ))
	}
	h, err := parseHello(payload)
	if err != nil {
		return s.protoFault(-1, fmt.Errorf("native: handshake: %w", err))
	}
	if err := s.verifyHello(h); err != nil {
		return s.protoFault(-1, err)
	}
	s.state = StateServing
	return nil
}

func (s *Supervisor) verifyHello(h hello) error {
	l := &s.cfg.Layout
	switch {
	case h.Version != protoVersion:
		return fmt.Errorf("native: handshake: protocol version %d, want %d", h.Version, protoVersion)
	case int(h.WordBits) != l.WordBits:
		return fmt.Errorf("native: handshake: word width %d, want %d", h.WordBits, l.WordBits)
	case int(h.NumVars) != l.NumVars:
		return fmt.Errorf("native: handshake: %d state words, want %d", h.NumVars, l.NumVars)
	case int(h.NumPI) != len(l.Inputs):
		return fmt.Errorf("native: handshake: %d inputs, want %d", h.NumPI, len(l.Inputs))
	case int(h.NumPO) != len(l.Outputs):
		return fmt.Errorf("native: handshake: %d outputs, want %d", h.NumPO, len(l.Outputs))
	case h.Hash != s.cfg.CircuitHash:
		return fmt.Errorf("native: handshake: circuit hash %.12s..., want %.12s...", h.Hash, s.cfg.CircuitHash)
	case h.Technique != s.cfg.Technique:
		return fmt.Errorf("native: handshake: technique %q, want %q", h.Technique, s.cfg.Technique)
	}
	return nil
}

// RunBatch simulates the vectors on the child and returns each vector's
// packed primary-output bits. On a fault it kills the child, applies
// the capped-backoff schedule and respawns, re-sending the whole batch
// (settled outputs depend only on the vector, so replay is safe); after
// Policy.MaxRetries respawns it quarantines and returns the last typed
// fault — the caller then owns the in-process fallback.
func (s *Supervisor) RunBatch(vecs [][]bool) ([][]byte, error) {
	if s.state == StateQuarantined || s.closed {
		return nil, resilience.Subprocess(s.cfg.Engine, -1, s.lastExit, "", resilience.ErrQuarantined)
	}
	if len(vecs) == 0 {
		return nil, nil
	}
	s.seq++
	seq := s.seq
	frame := encodeBatch(seq, len(s.cfg.Layout.Inputs), vecs)
	var fault *resilience.EngineFault
	for attempt := 0; attempt <= s.cfg.Policy.MaxRetries; attempt++ {
		if attempt > 0 {
			s.state = StateRespawning
			time.Sleep(s.cfg.Policy.Backoff(attempt - 1))
			if s.cfg.Obs != nil {
				s.cfg.Obs.AddNativeRespawn()
			}
		}
		if s.child == nil {
			if f := s.spawn(); f != nil {
				fault = f
				s.noteFault(f)
				s.killChild()
				continue
			}
		}
		res, f := s.exchange(seq, frame, len(vecs))
		if f == nil {
			return res, nil
		}
		fault = f
		s.noteFault(f)
		s.killChild()
	}
	s.state = StateQuarantined
	return nil, fault
}

// exchange writes one batch frame and reads the results frame under the
// per-batch deadline.
func (s *Supervisor) exchange(seq uint32, frame []byte, count int) ([][]byte, *resilience.EngineFault) {
	c := s.child
	deadline := time.Now().Add(s.batchBudget(count))
	out := frame
	if s.cfg.Disrupt != nil {
		out = s.cfg.Disrupt.MangleBatch(seq, append([]byte(nil), frame...))
	}
	c.stdin.SetWriteDeadline(deadline)
	if _, err := c.stdin.Write(out); err != nil {
		return nil, s.fault(int64(seq), err)
	}
	s.countFrames(1, 0)
	if s.cfg.Disrupt != nil {
		s.cfg.Disrupt.BatchSent(seq, c)
	}
	poBytes := (len(s.cfg.Layout.Outputs) + 7) / 8
	for {
		c.stdout.SetReadDeadline(deadline)
		typ, payload, err := readFrame(c.br)
		if err != nil {
			return nil, s.fault(int64(seq), err)
		}
		s.countFrames(0, 1)
		switch typ {
		case framePong:
			continue
		case frameResults:
			if len(payload) < 8 {
				return nil, s.protoFault(int64(seq), errTruncated)
			}
			rseq := binary.LittleEndian.Uint32(payload)
			rcount := int(binary.LittleEndian.Uint32(payload[4:]))
			if rseq != seq || rcount != count || len(payload) != 8+count*poBytes {
				return nil, s.protoFault(int64(seq),
					fmt.Errorf("native: results desync: seq %d/%d count %d/%d len %d",
						rseq, seq, rcount, count, len(payload)))
			}
			body := payload[8:]
			res := make([][]byte, count)
			for i := range res {
				res[i] = append([]byte(nil), body[i*poBytes:(i+1)*poBytes]...)
			}
			return res, nil
		default:
			return nil, s.protoFault(int64(seq), fmt.Errorf("native: unexpected frame type %d", typ))
		}
	}
}

// encodeBatch renders the batch frame: seq, count, then count packed
// primary-input vectors.
func encodeBatch(seq uint32, numPI int, vecs [][]bool) []byte {
	piBytes := (numPI + 7) / 8
	payload := make([]byte, 8, 8+len(vecs)*piBytes)
	binary.LittleEndian.PutUint32(payload, seq)
	binary.LittleEndian.PutUint32(payload[4:], uint32(len(vecs)))
	scratch := make([]byte, piBytes)
	for _, v := range vecs {
		payload = append(payload, packBits(scratch, v)...)
	}
	return appendFrame(nil, frameBatch, payload)
}

// batchBudget is the per-batch deadline: Policy.LevelBudget plus a
// per-vector share of it, so a 5000-vector batch is not held to a
// single level's budget. 0 disables the deadline entirely.
func (s *Supervisor) batchBudget(count int) time.Duration {
	b := s.cfg.Policy.LevelBudget
	if b <= 0 {
		return 24 * time.Hour
	}
	return b + b*time.Duration(count)/64
}

// Ping sends a liveness probe and waits for the echo under the batch
// budget — the piggybacked health check the facade and drills use.
func (s *Supervisor) Ping() error {
	if s.child == nil {
		return resilience.Subprocess(s.cfg.Engine, -1, s.lastExit, "", resilience.ErrQuarantined)
	}
	s.pingSeq++
	var nonce [4]byte
	binary.LittleEndian.PutUint32(nonce[:], s.pingSeq)
	deadline := time.Now().Add(s.batchBudget(1))
	s.child.stdin.SetWriteDeadline(deadline)
	if _, err := s.child.stdin.Write(appendFrame(nil, framePing, nonce[:])); err != nil {
		f := s.fault(-1, err)
		s.killChild()
		return f
	}
	s.countFrames(1, 0)
	s.child.stdout.SetReadDeadline(deadline)
	typ, payload, err := readFrame(s.child.br)
	if err != nil {
		f := s.fault(-1, err)
		s.killChild()
		return f
	}
	s.countFrames(0, 1)
	if typ != framePong || !bytes.Equal(payload, nonce[:]) {
		f := s.protoFault(-1, fmt.Errorf("native: ping echo mismatch (frame type %d)", typ))
		s.killChild()
		return f
	}
	return nil
}

// fault classifies a batch-path error into a typed EngineFault:
// deadline errors become FaultDeadline/ErrChildStall, protocol
// sentinels become FaultProtocol, and everything else (EOF, EPIPE,
// spawn errors) becomes FaultSubprocess with the child's exit status
// and stderr tail.
func (s *Supervisor) fault(frame int64, err error) *resilience.EngineFault {
	switch {
	case errors.Is(err, os.ErrDeadlineExceeded):
		f := &resilience.EngineFault{
			Kind: resilience.FaultDeadline, Engine: s.cfg.Engine,
			Level: -1, Shard: -1, Instr: -1,
			Frame: frame, Stderr: s.stderrTail(), Err: resilience.ErrChildStall,
		}
		return f
	case errors.Is(err, errCRC), errors.Is(err, errOversized), errors.Is(err, errTruncated):
		return s.protoFault(frame, err)
	default:
		exit := s.killChild()
		return resilience.Subprocess(s.cfg.Engine, frame, exit, s.lastTail, err)
	}
}

func (s *Supervisor) protoFault(frame int64, err error) *resilience.EngineFault {
	if s.cfg.Obs != nil {
		s.cfg.Obs.AddNativeProtocolError()
	}
	return resilience.Protocol(s.cfg.Engine, frame, s.stderrTail(), err)
}

// noteFault records the fault in the supervisor and the guard-fault
// counter family (kind subprocess/protocol/deadline), so intermediate
// faults recovered by a successful respawn still leave a trace.
func (s *Supervisor) noteFault(f *resilience.EngineFault) {
	s.last = f
	if s.cfg.Obs != nil {
		s.cfg.Obs.AddGuardFault(f.Kind)
	}
}

// killChild reaps the child (idempotently) and returns its exit code
// (-1 when signaled). The stderr tail survives into lastTail — Wait
// guarantees the exec-internal stderr copy has finished, so the tail is
// complete.
func (s *Supervisor) killChild() int {
	c := s.child
	if c == nil {
		return s.lastExit
	}
	s.child = nil
	c.cmd.Process.Kill()
	err := c.cmd.Wait()
	c.stdin.Close()
	c.stdout.Close()
	s.lastExit = exitCode(err)
	s.lastTail = c.stderr.Tail()
	return s.lastExit
}

// exitCode extracts a process exit status from a Wait/Run error: 0 on
// nil, the code for clean exits, -1 for signals and non-exec errors.
func exitCode(err error) int {
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode()
	}
	return -1
}

func (s *Supervisor) stderrTail() string {
	if s.child == nil {
		return s.lastTail
	}
	return s.child.stderr.Tail()
}

func (s *Supervisor) countFrames(sent, received int64) {
	if s.cfg.Obs == nil {
		return
	}
	if sent != 0 {
		s.cfg.Obs.AddNativeFramesSent(sent)
	}
	if received != 0 {
		s.cfg.Obs.AddNativeFramesReceived(received)
	}
}

// SetObserver redirects the udsim_native_* counters (nil detaches).
func (s *Supervisor) SetObserver(o *obs.Observer) { s.cfg.Obs = o }

// State returns the supervisor's lifecycle position.
func (s *Supervisor) State() State { return s.state }

// Quarantined reports whether the respawn budget is exhausted.
func (s *Supervisor) Quarantined() bool { return s.state == StateQuarantined }

// LastFault returns the most recent typed fault (nil if none).
func (s *Supervisor) LastFault() *resilience.EngineFault { return s.last }

// BuildTime returns the out-of-process `go build` wall time.
func (s *Supervisor) BuildTime() time.Duration { return s.buildDur }

// Dir returns the temp workspace (empty after Close) — test seam for
// the hygiene suite.
func (s *Supervisor) Dir() string { return s.dir }

// Kill SIGKILLs the live child (test seam); the next batch respawns.
func (s *Supervisor) Kill() {
	if s.child != nil {
		s.child.Kill()
	}
}

// Close asks the child to quit, reaps it and removes the workspace.
// Idempotent.
func (s *Supervisor) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if c := s.child; c != nil {
		c.stdin.SetWriteDeadline(time.Now().Add(100 * time.Millisecond))
		if _, err := c.stdin.Write(appendFrame(nil, frameQuit, nil)); err == nil {
			s.countFrames(1, 0)
		}
	}
	s.killChild()
	s.removeWorkspace()
	return nil
}

// stderrRing keeps the tail of the child's stderr stream: the last
// tailCap bytes, however much the child floods. exec.Cmd copies the
// child's stderr into it from its own goroutine; Tail may race that
// copy, so both sides lock.
type stderrRing struct {
	mu  sync.Mutex
	buf []byte
}

const tailCap = 4096

// Write implements io.Writer.
func (r *stderrRing) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(p) >= tailCap {
		r.buf = append(r.buf[:0], p[len(p)-tailCap:]...)
		return len(p), nil
	}
	r.buf = append(r.buf, p...)
	if over := len(r.buf) - tailCap; over > 0 {
		r.buf = append(r.buf[:0], r.buf[over:]...)
	}
	return len(p), nil
}

// Tail returns the captured stderr tail.
func (r *stderrRing) Tail() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return string(r.buf)
}

// tailOf truncates a build log to the witness tail.
func tailOf(s string) string {
	if len(s) <= tailCap {
		return s
	}
	return s[len(s)-tailCap:]
}
