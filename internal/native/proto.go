// Package native runs a circuit's validated codegen output as a
// supervised out-of-process subprocess — the paper's "genuinely
// straight-line native code" backend, wrapped in the PR-5 resilience
// ladder.
//
// The generated Go (the same emission rules V016-V018 certify) is
// written to a temp-dir module, `go build`-ed out of process, and the
// resulting child speaks a length-prefixed, CRC-checked vector protocol
// over its stdin/stdout: a handshake frame carrying the protocol
// version, circuit hash and technique, then batches of packed
// primary-input bits in and packed primary-output bits out. A
// Supervisor owns the child's full lifecycle — build/handshake
// deadlines, per-batch deadlines from resilience.Policy, capped
// exponential-backoff respawn on crash/EOF/protocol violation, and
// after MaxRetries a quarantine that makes the caller fall back to the
// in-process engine permanently. Every failure is a typed
// *resilience.EngineFault with frame coordinates, exit status and a
// stderr tail as witnesses — never a hang, never a wrong bit.
package native

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame format, least significant byte first:
//
//	u32 payload length | u8 frame type | payload | u32 CRC-32 (IEEE)
//
// The CRC covers the type byte and the payload. The same layout is
// baked into the generated child driver (gen.go); protoVersion guards
// the two implementations against drifting apart.
const (
	// protoVersion is the wire-protocol version the handshake pins.
	protoVersion = 1
	// maxPayload bounds a frame's payload; anything larger is a
	// protocol violation (a desynced or hostile child), not a read.
	maxPayload = 16 << 20

	frameHello   = 1 // child→parent: version/handshake
	frameBatch   = 2 // parent→child: seq, count, packed PI bits
	frameResults = 3 // child→parent: seq, count, packed PO bits
	framePing    = 4 // parent→child: liveness probe (u32 nonce)
	framePong    = 5 // child→parent: ping echo
	frameQuit    = 6 // parent→child: clean shutdown request
)

// Protocol violation sentinels; the supervisor wraps them in
// FaultProtocol faults with the frame coordinate.
var (
	errCRC       = errors.New("native: frame crc mismatch")
	errOversized = errors.New("native: frame payload exceeds limit")
	errTruncated = errors.New("native: truncated frame")
)

// appendFrame appends one encoded frame to dst.
func appendFrame(dst []byte, typ byte, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, typ)
	dst = append(dst, payload...)
	crc := crc32.ChecksumIEEE(dst[len(dst)-len(payload)-1:])
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// readFrame reads one frame. An EOF before the first header byte is
// returned as io.EOF (the child closed its stream at a frame
// boundary); an EOF anywhere inside a frame is errTruncated.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return 0, nil, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return 0, nil, truncated(err)
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxPayload {
		return 0, nil, fmt.Errorf("%w (%d bytes)", errOversized, n)
	}
	typ = hdr[4]
	body := make([]byte, 1+n+4)
	body[0] = typ
	if _, err := io.ReadFull(r, body[1:]); err != nil {
		return 0, nil, truncated(err)
	}
	want := binary.LittleEndian.Uint32(body[1+n:])
	if crc32.ChecksumIEEE(body[:1+n]) != want {
		return 0, nil, errCRC
	}
	return typ, body[1 : 1+n], nil
}

// truncated maps a mid-frame EOF to the protocol sentinel and leaves
// every other error (deadlines in particular) alone.
func truncated(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return errTruncated
	}
	return err
}

// hello is the decoded handshake frame.
type hello struct {
	Version   uint32
	WordBits  uint32
	NumVars   uint32
	NumPI     uint32
	NumPO     uint32
	Hash      string
	Technique string
}

// parseHello decodes a hello payload.
func parseHello(p []byte) (h hello, err error) {
	if len(p) < 5*4 {
		return h, errTruncated
	}
	h.Version = binary.LittleEndian.Uint32(p)
	h.WordBits = binary.LittleEndian.Uint32(p[4:])
	h.NumVars = binary.LittleEndian.Uint32(p[8:])
	h.NumPI = binary.LittleEndian.Uint32(p[12:])
	h.NumPO = binary.LittleEndian.Uint32(p[16:])
	rest := p[20:]
	h.Hash, rest, err = parseString(rest)
	if err != nil {
		return h, err
	}
	h.Technique, rest, err = parseString(rest)
	if err != nil {
		return h, err
	}
	if len(rest) != 0 {
		return h, fmt.Errorf("native: %d trailing handshake bytes", len(rest))
	}
	return h, nil
}

func parseString(p []byte) (string, []byte, error) {
	if len(p) < 4 {
		return "", nil, errTruncated
	}
	n := binary.LittleEndian.Uint32(p)
	if uint32(len(p)-4) < n {
		return "", nil, errTruncated
	}
	return string(p[4 : 4+n]), p[4+n:], nil
}

// packBits packs a bool vector into bytes, bit i at byte i/8 bit i%8.
func packBits(dst []byte, vec []bool) []byte {
	n := (len(vec) + 7) / 8
	for len(dst) < n {
		dst = append(dst, 0)
	}
	for i := range dst[:n] {
		dst[i] = 0
	}
	for i, b := range vec {
		if b {
			dst[i>>3] |= 1 << (uint(i) & 7)
		}
	}
	return dst[:n]
}

// Bit reads bit i of a packed vector.
func Bit(packed []byte, i int) bool {
	return packed[i>>3]>>(uint(i)&7)&1 == 1
}
