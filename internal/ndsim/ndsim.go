// Package ndsim implements nominal-delay event-driven simulation: each
// gate carries its own integer delay instead of the uniform single unit
// the paper's compiled techniques assume. The paper's closing section
// names "even more accurate timing models" as future work; this package
// provides that reference model, so the unit-delay engines can be
// compared against a finer-grained truth (with all delays equal to one,
// the two models coincide exactly, which the tests exploit).
//
// The scheduler is a classic timing wheel: a circular array of event
// lists indexed by time modulo the wheel size, which is sized to the
// largest gate delay so no event ever wraps past an unserved slot.
package ndsim

import (
	"fmt"

	"udsim/internal/circuit"
	"udsim/internal/levelize"
	"udsim/internal/logic"
	"udsim/internal/refsim"
)

// DelayModel assigns an integer delay ≥ 1 to every gate.
type DelayModel func(g *circuit.Gate) int

// UnitDelays is the paper's timing model: every gate delays one unit.
func UnitDelays(*circuit.Gate) int { return 1 }

// FaninDelays is a simple nominal model: a gate's delay grows with its
// fanin (1 + fanin/2), approximating series-transistor stacks.
func FaninDelays(g *circuit.Gate) int { return 1 + len(g.Inputs)/2 }

// TypeDelays assigns inverting gates one unit and everything else two —
// a caricature of static CMOS, where NAND/NOR are a single stage and
// AND/OR/XOR need two.
func TypeDelays(g *circuit.Gate) int {
	switch g.Type {
	case logic.Not, logic.Nand, logic.Nor, logic.Buf:
		return 1
	case logic.Const0, logic.Const1:
		return 1
	default:
		return 2
	}
}

type event struct {
	net  int32
	v    logic.V3
	next int32 // index into the event pool, -1 terminates
}

// Sim is a nominal-delay event-driven simulator.
type Sim struct {
	c     *circuit.Circuit
	delay []int
	maxT  int // upper bound on settling time: Σ over critical path

	gateType []logic.GateType
	gateIn   [][]int32
	gateOut  []int32
	fanout   [][]int32

	val []logic.V3

	wheel     []int32 // heads of per-slot event lists (pool indices)
	pool      []event
	pending   int
	evalStamp []int64
	stamp     int64

	// Events counts committed net changes since construction.
	Events int64
}

// New builds a nominal-delay simulator for a combinational circuit under
// the given delay model (nil = UnitDelays).
func New(c *circuit.Circuit, dm DelayModel) (*Sim, error) {
	if !c.Combinational() {
		return nil, fmt.Errorf("ndsim: circuit %s is sequential; break flip-flops first", c.Name)
	}
	if dm == nil {
		dm = UnitDelays
	}
	c = c.Normalize()
	a, err := levelize.Analyze(c)
	if err != nil {
		return nil, err
	}
	s := &Sim{
		c:         c,
		delay:     make([]int, c.NumGates()),
		gateType:  make([]logic.GateType, c.NumGates()),
		gateIn:    make([][]int32, c.NumGates()),
		gateOut:   make([]int32, c.NumGates()),
		fanout:    make([][]int32, c.NumNets()),
		val:       make([]logic.V3, c.NumNets()),
		evalStamp: make([]int64, c.NumGates()),
	}
	maxDelay := 1
	for i := range c.Gates {
		g := &c.Gates[i]
		d := dm(g)
		if d < 1 {
			return nil, fmt.Errorf("ndsim: gate %d assigned non-positive delay %d", i, d)
		}
		s.delay[i] = d
		if d > maxDelay {
			maxDelay = d
		}
		s.gateType[i] = g.Type
		ins := make([]int32, len(g.Inputs))
		for j, in := range g.Inputs {
			ins[j] = int32(in)
		}
		s.gateIn[i] = ins
		s.gateOut[i] = int32(g.Output)
	}
	for i := range c.Nets {
		seen := make(map[circuit.GateID]bool)
		for _, g := range c.Nets[i].Fanout {
			if !seen[g] {
				seen[g] = true
				s.fanout[i] = append(s.fanout[i], int32(g))
			}
		}
	}
	// Settling bound: depth × max delay covers the longest path.
	s.maxT = (a.Depth + 1) * maxDelay
	s.wheel = make([]int32, maxDelay+1)
	for i := range s.wheel {
		s.wheel[i] = -1
	}
	return s, nil
}

// Circuit returns the (normalized) circuit.
func (s *Sim) Circuit() *circuit.Circuit { return s.c }

// MaxSettle returns the settling-time upper bound in time units.
func (s *Sim) MaxSettle() int { return s.maxT }

// ResetConsistent initializes every net to the zero-delay settled state
// of the given input assignment (nil = all zeros).
func (s *Sim) ResetConsistent(inputs []bool) error {
	if inputs == nil {
		inputs = make([]bool, len(s.c.Inputs))
	}
	settled, err := refsim.Evaluate(s.c, inputs)
	if err != nil {
		return err
	}
	for i, v := range settled {
		s.val[i] = logic.FromBool(v)
	}
	return nil
}

// Value returns the current value of a net.
func (s *Sim) Value(id circuit.NetID) logic.V3 { return s.val[id] }

func (s *Sim) schedule(slot int, net int32, v logic.V3) {
	s.pool = append(s.pool, event{net: net, v: v, next: s.wheel[slot]})
	s.wheel[slot] = int32(len(s.pool) - 1)
	s.pending++
}

// ApplyVector applies one input vector at time 0 and advances the timing
// wheel until quiescence, returning the settling time. Change records
// (net, time, value) for every committed change are appended to changes
// when it is non-nil, enabling waveform reconstruction.
func (s *Sim) ApplyVector(inputs []bool, changes *[]Change) (int, error) {
	if len(inputs) != len(s.c.Inputs) {
		return 0, fmt.Errorf("ndsim: %d input values for %d primary inputs", len(inputs), len(s.c.Inputs))
	}
	s.pool = s.pool[:0]
	s.pending = 0

	// Time 0: input changes commit immediately.
	var changed []int32
	for i, id := range s.c.Inputs {
		nv := logic.FromBool(inputs[i])
		if s.val[id] != nv {
			s.val[id] = nv
			s.Events++
			changed = append(changed, int32(id))
			if changes != nil {
				*changes = append(*changes, Change{Net: circuit.NetID(id), Time: 0, Value: nv})
			}
		}
	}
	settle := 0
	wheelLen := len(s.wheel)
	for t := 0; ; t++ {
		if t > s.maxT {
			return settle, fmt.Errorf("ndsim: no quiescence after %d time units", s.maxT)
		}
		// Evaluate gates affected by nets that changed at time t and
		// schedule their output changes at t + delay.
		if len(changed) > 0 {
			s.stamp++
			for _, n := range changed {
				for _, g := range s.fanout[n] {
					if s.evalStamp[g] == s.stamp {
						continue
					}
					s.evalStamp[g] = s.stamp
					ins := make([]logic.V3, len(s.gateIn[g]))
					for j, in := range s.gateIn[g] {
						ins[j] = s.val[in]
					}
					nv := s.gateType[g].Eval3(ins)
					// Schedule unconditionally: a later input change can
					// cancel or confirm; commit-time filtering drops
					// no-ops. (Inertial cancellation is out of scope —
					// this is a transport-delay model.)
					s.schedule((t+s.delay[g])%wheelLen, s.gateOut[g], nv)
				}
			}
			changed = changed[:0]
		}
		if s.pending == 0 {
			return settle, nil
		}
		// Commit events scheduled for t+1 … advance one slot.
		slot := (t + 1) % wheelLen
		head := s.wheel[slot]
		s.wheel[slot] = -1
		for head != -1 {
			ev := s.pool[head]
			head = ev.next
			s.pending--
			if s.val[ev.net] != ev.v {
				s.val[ev.net] = ev.v
				s.Events++
				changed = append(changed, ev.net)
				settle = t + 1
				if changes != nil {
					*changes = append(*changes, Change{Net: circuit.NetID(ev.net), Time: t + 1, Value: ev.v})
				}
			}
		}
	}
}

// Change is one committed net value change.
type Change struct {
	Net   circuit.NetID
	Time  int
	Value logic.V3
}

// History expands a change list into a dense waveform for one net over
// times 0..depth, starting from the value the net held before the vector.
func History(changes []Change, net circuit.NetID, before logic.V3, depth int) []logic.V3 {
	h := make([]logic.V3, depth+1)
	cur := before
	idx := 0
	for t := 0; t <= depth; t++ {
		for idx < len(changes) {
			ch := changes[idx]
			if ch.Time > t {
				break
			}
			if ch.Net == net && ch.Time == t {
				cur = ch.Value
			}
			idx++
		}
		// idx may have skipped other nets' changes at this time; rescan
		// is avoided by the ordered walk: changes are time-ordered and
		// we only consume entries with Time ≤ t.
		h[t] = cur
	}
	return h
}
