package ndsim

import (
	"math/rand"
	"testing"

	"udsim/internal/circuit"
	"udsim/internal/ckttest"
	"udsim/internal/eventsim"
	"udsim/internal/logic"
	"udsim/internal/refsim"
	"udsim/internal/vectors"
)

func TestUnitDelaysEqualEventSim(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 12; trial++ {
		c := ckttest.Random(r, 35, 5)
		nd, err := New(c, UnitDelays)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := eventsim.New(c, eventsim.TwoValued)
		if err != nil {
			t.Fatal(err)
		}
		if err := nd.ResetConsistent(nil); err != nil {
			t.Fatal(err)
		}
		if err := ev.ResetConsistent(nil); err != nil {
			t.Fatal(err)
		}
		vecs := vectors.Random(10, len(nd.Circuit().Inputs), int64(trial))
		for _, vec := range vecs.Bits {
			before := snapshot(nd)
			var changes []Change
			if _, err := nd.ApplyVector(vec, &changes); err != nil {
				t.Fatal(err)
			}
			hist, err := ev.ApplyVectorTrace(vec)
			if err != nil {
				t.Fatal(err)
			}
			depth := ev.Depth()
			for n := 0; n < nd.Circuit().NumNets(); n++ {
				id := circuit.NetID(n)
				h := History(changes, id, before[n], depth)
				for tm := 0; tm <= depth; tm++ {
					if h[tm] != hist[tm][n] {
						t.Fatalf("trial %d net %s t=%d: ndsim %v, eventsim %v",
							trial, nd.Circuit().Nets[n].Name, tm, h[tm], hist[tm][n])
					}
				}
			}
		}
	}
}

func snapshot(s *Sim) []logic.V3 {
	out := make([]logic.V3, s.Circuit().NumNets())
	for i := range out {
		out[i] = s.Value(circuit.NetID(i))
	}
	return out
}

func TestNominalDelaysSettleToSteadyState(t *testing.T) {
	// Whatever the delay assignment, an acyclic circuit settles to the
	// zero-delay steady state.
	r := rand.New(rand.NewSource(13))
	for _, dm := range []DelayModel{UnitDelays, FaninDelays, TypeDelays} {
		c := ckttest.Random(r, 40, 5)
		s, err := New(c, dm)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.ResetConsistent(nil); err != nil {
			t.Fatal(err)
		}
		vecs := vectors.Random(10, len(s.Circuit().Inputs), 4)
		for _, vec := range vecs.Bits {
			if _, err := s.ApplyVector(vec, nil); err != nil {
				t.Fatal(err)
			}
			ref, err := refsim.Evaluate(s.Circuit(), vec)
			if err != nil {
				t.Fatal(err)
			}
			for n := range ref {
				if s.Value(circuit.NetID(n)) != logic.FromBool(ref[n]) {
					t.Fatalf("net %d settled wrong under %T", n, dm)
				}
			}
		}
	}
}

func TestLongerDelaysSettleLater(t *testing.T) {
	// A chain under TypeDelays (XOR=2) settles later than under unit
	// delays.
	c := ckttest.Deep(20, 3)
	u, err := New(c, UnitDelays)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(c, TypeDelays)
	if err != nil {
		t.Fatal(err)
	}
	_ = u.ResetConsistent(nil)
	_ = n.ResetConsistent(nil)
	vec := []bool{true, true}
	su, err := u.ApplyVector(vec, nil)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := n.ApplyVector(vec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sn <= su {
		t.Errorf("nominal settle %d not later than unit settle %d", sn, su)
	}
}

func TestGlitchWidthFollowsDelays(t *testing.T) {
	// B = NOT A (delay 1), C = AND(A,B) (delay d). With TypeDelays the
	// AND takes 2 units, so the pulse on C shifts later but keeps its
	// one-unit width (the NOT's delay sets the width).
	b := circuit.NewBuilder("glitch")
	a := b.Input("A")
	nb := b.Gate(logic.Not, "B", a)
	cc := b.Gate(logic.And, "C", a, nb)
	b.Output(cc)
	c := b.MustBuild()
	s, err := New(c, TypeDelays)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ResetConsistent([]bool{false}); err != nil {
		t.Fatal(err)
	}
	var changes []Change
	if _, err := s.ApplyVector([]bool{true}, &changes); err != nil {
		t.Fatal(err)
	}
	cid, _ := s.Circuit().NetByName("C")
	h := History(changes, cid, logic.V0, 4)
	want := []logic.V3{logic.V0, logic.V0, logic.V1, logic.V0, logic.V0}
	for tm, w := range want {
		if h[tm] != w {
			t.Fatalf("C history %v, want rise at 2 fall at 3 (%v)", h, want)
		}
	}
}

func TestDelayModelValidation(t *testing.T) {
	c := ckttest.Fig4()
	if _, err := New(c, func(*circuit.Gate) int { return 0 }); err == nil {
		t.Error("expected rejection of zero delay")
	}
	b := circuit.NewBuilder("seq")
	q := b.FlipFlop("Q", circuit.NoNet)
	d := b.Gate(logic.Not, "D", q)
	b.BindFlipFlop(q, d)
	b.Output(d)
	if _, err := New(b.MustBuild(), nil); err == nil {
		t.Error("expected sequential rejection")
	}
	s, _ := New(c, nil)
	if _, err := s.ApplyVector([]bool{true}, nil); err == nil {
		t.Error("expected width error")
	}
}

func TestEventCounting(t *testing.T) {
	c := ckttest.Fig4()
	s, _ := New(c, nil)
	_ = s.ResetConsistent(nil)
	if _, err := s.ApplyVector([]bool{true, true, true}, nil); err != nil {
		t.Fatal(err)
	}
	if s.Events == 0 {
		t.Error("no events counted")
	}
	if s.MaxSettle() <= 0 {
		t.Error("bad settle bound")
	}
}
