package bench85

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse checks the parser never panics and that anything it accepts
// is a valid circuit that re-serializes and re-parses to the same shape.
func FuzzParse(f *testing.F) {
	f.Add(c17)
	f.Add("INPUT(A)\nOUTPUT(Y)\nY = NOT(A)\n")
	f.Add("INPUT(A)\nOUTPUT(Q)\nQ = DFF(D)\nD = XOR(A, Q)\n")
	f.Add("# only a comment\n")
	f.Add("X = AND(,,)\n")
	f.Add("INPUT(A)\nY = AND(A, A\n")
	f.Add("OUTPUT()\n")
	f.Add(strings.Repeat("INPUT(A)\n", 3))
	f.Add("INPUT(A)\nX = NOT(A)\nX = AND(A, A)\n")
	f.Add("INPUT(A)\nA = NOT(A)\n")
	f.Add("INPUT(A)\nX = AND(A, A,)\n")
	f.Add("INPUT(A)\nX = NOT()\nOUTPUT(X)\n")
	f.Add("INPUT(A)\nOUTPUT(Q)\nQ = DFF(Q)\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(strings.NewReader(src), "fuzz")
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("parser accepted an invalid circuit: %v", err)
		}
		if c.HasWiredNets() {
			return // not representable by Write
		}
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			t.Fatalf("accepted circuit failed to serialize: %v", err)
		}
		back, err := Parse(bytes.NewReader(buf.Bytes()), "fuzz")
		if err != nil {
			t.Fatalf("own output failed to reparse: %v\n%s", err, buf.String())
		}
		if back.NumGates() != c.NumGates() || len(back.Inputs) != len(c.Inputs) ||
			len(back.FFs) != len(c.FFs) {
			t.Fatalf("round trip changed shape: %s vs %s", c, back)
		}
	})
}
