package bench85

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"udsim/internal/circuit"
	"udsim/internal/logic"
	"udsim/internal/refsim"
)

// c17 is the smallest ISCAS-85 circuit, reproduced verbatim from the
// published netlist.
const c17 = `
# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

func TestParseC17(t *testing.T) {
	c, err := Parse(strings.NewReader(c17), "c17")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Inputs) != 5 || len(c.Outputs) != 2 || c.NumGates() != 6 {
		t.Fatalf("c17 shape wrong: %s", c)
	}
	// Functional spot check: all inputs 0 → NANDs of zeros are 1, so
	// 10=1, 11=1, 16=NAND(0,1)=1, 19=NAND(1,0)=1, 22=NAND(1,1)=0, 23=0.
	vals, err := refsim.Evaluate(c, []bool{false, false, false, false, false})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"22", "23"} {
		id, ok := c.NetByName(name)
		if !ok {
			t.Fatalf("net %s missing", name)
		}
		if vals[id] {
			t.Errorf("net %s = 1, want 0", name)
		}
	}
}

func TestParseForwardReference(t *testing.T) {
	// Gates defined before their inputs are legal in .bench.
	src := `
INPUT(A)
OUTPUT(Y)
Y = NOT(X)
X = NOT(A)
`
	c, err := Parse(strings.NewReader(src), "fwd")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 2 {
		t.Fatalf("got %d gates", c.NumGates())
	}
}

func TestParseDFF(t *testing.T) {
	src := `
INPUT(A)
OUTPUT(Q)
Q = DFF(D)
D = XOR(A, Q)
`
	c, err := Parse(strings.NewReader(src), "seq")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.FFs) != 1 {
		t.Fatalf("got %d flip-flops", len(c.FFs))
	}
	comb, ffs := c.BreakFlipFlops()
	if len(ffs) != 1 {
		t.Fatal("BreakFlipFlops lost the flip-flop")
	}
	if _, err := comb.TopoGates(); err != nil {
		t.Fatal(err)
	}
}

func TestParseAliases(t *testing.T) {
	src := `
INPUT(A)
OUTPUT(Y)
B = BUFF(A)
Y = INV(B)
`
	c, err := Parse(strings.NewReader(src), "alias")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := c.NetByName("B")
	if c.Gate(c.Net(b).Drivers[0]).Type != logic.Buf {
		t.Error("BUFF should parse as BUF")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty input":      "INPUT()\n",
		"duplicate input":  "INPUT(A)\nINPUT(A)\n",
		"no assignment":    "INPUT(A)\nGARBAGE\n",
		"bad rhs":          "INPUT(A)\nX = NOT A\n",
		"unknown op":       "INPUT(A)\nX = FROB(A)\n",
		"bad dff":          "INPUT(A)\nX = DFF(A, A)\n",
		"undefined out":    "INPUT(A)\nOUTPUT(Z)\nX = NOT(A)\n",
		"empty out name":   "INPUT(A)\n = NOT(A)\n",
		"empty arg list":   "INPUT(A)\nX = NOT()\n",
		"empty arg token":  "INPUT(A)\nX = AND(A, , A)\n",
		"trailing comma":   "INPUT(A)\nX = AND(A, A,)\n",
		"duplicate gate":   "INPUT(A)\nX = NOT(A)\nX = AND(A, A)\n",
		"redefined input":  "INPUT(A)\nA = NOT(A)\n",
		"redefined as dff": "INPUT(A)\nQ = NOT(A)\nQ = DFF(A)\n",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src), name); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

// TestParseErrorLineNumbers pins the parser's error locating: a malformed
// line is reported by its own 1-based number, never silently skipped.
func TestParseErrorLineNumbers(t *testing.T) {
	cases := map[string]struct {
		src  string
		want string
	}{
		"empty token":   {"INPUT(A)\n\n# pad\nX = AND(A, , A)\n", "line 4"},
		"dup gate":      {"INPUT(A)\nX = NOT(A)\nX = AND(A, A)\n", "line 3: net X already defined at line 2"},
		"redef input":   {"INPUT(A)\nA = NOT(A)\n", "line 2: net A already declared INPUT"},
		"undefined out": {"INPUT(A)\nOUTPUT(Z)\nX = NOT(A)\n", "line 2: OUTPUT(Z)"},
	}
	for name, tc := range cases {
		_, err := Parse(strings.NewReader(tc.src), name)
		if err == nil {
			t.Errorf("%s: expected parse error", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
}

// errReader fails after its content is consumed, like a flaky file.
type errReader struct{ done bool }

func (r *errReader) Read(p []byte) (int, error) {
	if r.done {
		return 0, errReadFailed
	}
	r.done = true
	return copy(p, "INPUT(A)\n"), nil
}

var errReadFailed = fmt.Errorf("disk on fire")

// TestParseScannerError checks that an underlying read error is wrapped
// (errors.Is-visible) and located, not returned bare or swallowed.
func TestParseScannerError(t *testing.T) {
	_, err := Parse(&errReader{}, "flaky")
	if err == nil {
		t.Fatal("expected read error")
	}
	if !errors.Is(err, errReadFailed) {
		t.Errorf("error %q does not wrap the read error", err)
	}
	if !strings.Contains(err.Error(), "line 1") {
		t.Errorf("error %q does not locate the failure", err)
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	orig, err := Parse(strings.NewReader(c17), "c17")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(bytes.NewReader(buf.Bytes()), "c17")
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, buf.String())
	}
	if back.NumGates() != orig.NumGates() || len(back.Inputs) != len(orig.Inputs) ||
		len(back.Outputs) != len(orig.Outputs) {
		t.Fatal("round trip changed the shape")
	}
	// Functional equivalence on all 32 input combinations.
	for mask := 0; mask < 32; mask++ {
		in := make([]bool, 5)
		for i := range in {
			in[i] = mask>>i&1 == 1
		}
		v1, err := refsim.Evaluate(orig, in)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := refsim.Evaluate(back, in)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range orig.Outputs {
			name := orig.Net(o).Name
			o2, ok := back.NetByName(name)
			if !ok {
				t.Fatalf("output %s lost", name)
			}
			if v1[o] != v2[o2] {
				t.Fatalf("mask %d output %s: %v vs %v", mask, name, v1[o], v2[o2])
			}
		}
	}
}

func TestWriteSequentialRoundTrip(t *testing.T) {
	src := "INPUT(A)\nOUTPUT(Q)\nQ = DFF(D)\nD = XOR(A, Q)\n"
	c, err := Parse(strings.NewReader(src), "seq")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(bytes.NewReader(buf.Bytes()), "seq")
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if len(back.FFs) != 1 {
		t.Error("flip-flop lost in round trip")
	}
}

func TestWriteRejectsWired(t *testing.T) {
	b := circuit.NewBuilder("wired")
	a := b.Input("A")
	bb := b.Input("B")
	w := b.Net("W")
	b.GateInto(logic.Buf, w, a)
	b.GateInto(logic.Buf, w, bb)
	b.Wired(w, circuit.WiredAnd)
	b.Output(w)
	wired := b.MustBuild()
	var buf bytes.Buffer
	if err := Write(&buf, wired); err == nil {
		t.Error("expected wired-net error")
	}
	if err := Write(&buf, wired.Normalize()); err != nil {
		t.Errorf("normalized circuit should write: %v", err)
	}
}
