// Package bench85 reads and writes the ISCAS-85 ".bench" netlist format,
// the textual form in which the paper's benchmark circuits circulate:
//
//	# c17
//	INPUT(1)
//	INPUT(2)
//	OUTPUT(22)
//	10 = NAND(1, 3)
//	22 = NAND(10, 16)
//
// The sequential extension used by the ISCAS-89 family is also accepted:
// "Q = DFF(D)" declares a D flip-flop, which BreakFlipFlops can later
// lower per the paper's §1 treatment of synchronous circuits.
package bench85

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"udsim/internal/circuit"
	"udsim/internal/logic"
)

// Parse reads a .bench netlist and builds a circuit with the given name.
func Parse(r io.Reader, name string) (*circuit.Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	b := circuit.NewBuilder(name)

	type gateDef struct {
		line int
		out  string
		op   string
		args []string
	}
	type outDecl struct {
		line int
		name string
	}
	var (
		defs    []gateDef
		outputs []outDecl
		inputs  = map[string]bool{}
		defined = map[string]int{} // gate/DFF output net -> defining line
		lineNo  int
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(strings.ToUpper(line), "INPUT(") && strings.HasSuffix(line, ")"):
			arg := strings.TrimSpace(line[len("INPUT(") : len(line)-1])
			if arg == "" {
				return nil, fmt.Errorf("bench85: line %d: empty INPUT", lineNo)
			}
			if inputs[arg] {
				return nil, fmt.Errorf("bench85: line %d: duplicate INPUT(%s)", lineNo, arg)
			}
			inputs[arg] = true
			b.Input(arg)
		case strings.HasPrefix(strings.ToUpper(line), "OUTPUT(") && strings.HasSuffix(line, ")"):
			arg := strings.TrimSpace(line[len("OUTPUT(") : len(line)-1])
			if arg == "" {
				return nil, fmt.Errorf("bench85: line %d: empty OUTPUT", lineNo)
			}
			outputs = append(outputs, outDecl{lineNo, arg})
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, fmt.Errorf("bench85: line %d: expected assignment: %q", lineNo, line)
			}
			out := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			open := strings.Index(rhs, "(")
			if open < 0 || !strings.HasSuffix(rhs, ")") {
				return nil, fmt.Errorf("bench85: line %d: expected OP(args): %q", lineNo, rhs)
			}
			op := strings.ToUpper(strings.TrimSpace(rhs[:open]))
			argStr := rhs[open+1 : len(rhs)-1]
			if strings.TrimSpace(argStr) == "" {
				return nil, fmt.Errorf("bench85: line %d: %s() has no arguments", lineNo, op)
			}
			var args []string
			for i, a := range strings.Split(argStr, ",") {
				a = strings.TrimSpace(a)
				if a == "" {
					return nil, fmt.Errorf("bench85: line %d: empty argument %d in %s(%s)", lineNo, i+1, op, argStr)
				}
				args = append(args, a)
			}
			if out == "" {
				return nil, fmt.Errorf("bench85: line %d: empty output name", lineNo)
			}
			if prev, dup := defined[out]; dup {
				return nil, fmt.Errorf("bench85: line %d: net %s already defined at line %d", lineNo, out, prev)
			}
			if inputs[out] {
				return nil, fmt.Errorf("bench85: line %d: net %s already declared INPUT", lineNo, out)
			}
			defined[out] = lineNo
			defs = append(defs, gateDef{lineNo, out, op, args})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench85: read failed after line %d: %w", lineNo, err)
	}

	// Declare all defined nets first so forward references resolve.
	for _, d := range defs {
		b.Net(d.out)
	}
	for _, d := range defs {
		if d.op == "DFF" {
			if len(d.args) != 1 {
				return nil, fmt.Errorf("bench85: line %d: DFF takes one input", d.line)
			}
			continue // handled below, after all nets exist
		}
		gt, err := logic.ParseGateType(d.op)
		if err != nil {
			return nil, fmt.Errorf("bench85: line %d: %w", d.line, err)
		}
		ins := make([]circuit.NetID, len(d.args))
		for i, a := range d.args {
			ins[i] = b.Net(a)
		}
		b.GateInto(gt, b.Net(d.out), ins...)
	}
	// Flip-flops: the Q net was declared by b.Net(d.out); rebuild it as a
	// proper flip-flop by a dedicated pass. The builder's FlipFlop
	// allocates a fresh net, so instead record DFFs via a second builder
	// walk: declare Q nets as flip-flop outputs bound to D nets.
	for _, d := range defs {
		if d.op != "DFF" {
			continue
		}
		q := b.Net(d.out)
		dNet := b.Net(d.args[0])
		b.DeclareFlipFlop(d.out, q, dNet)
	}
	for _, o := range outputs {
		id, ok := lookup(b, o.name)
		if !ok {
			return nil, fmt.Errorf("bench85: line %d: OUTPUT(%s) references an undefined net", o.line, o.name)
		}
		b.Output(id)
	}
	c, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("bench85: %w", err)
	}
	return c, nil
}

func lookup(b *circuit.Builder, name string) (circuit.NetID, bool) {
	return b.Lookup(name)
}

// Write serializes a circuit in .bench format. Gates are emitted in
// topological order; wired nets are not representable and cause an error
// (normalize the circuit first).
func Write(w io.Writer, c *circuit.Circuit) error {
	if c.HasWiredNets() {
		return fmt.Errorf("bench85: circuit %s has wired nets; Normalize before writing", c.Name)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d gates, %d flip-flops\n",
		len(c.Inputs), len(c.Outputs), c.NumGates(), len(c.FFs))
	for _, id := range c.Inputs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Net(id).Name)
	}
	for _, id := range c.Outputs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Net(id).Name)
	}
	ffs := append([]circuit.DFF(nil), c.FFs...)
	sort.Slice(ffs, func(i, j int) bool { return ffs[i].Q < ffs[j].Q })
	for _, ff := range ffs {
		fmt.Fprintf(bw, "%s = DFF(%s)\n", c.Net(ff.Q).Name, c.Net(ff.D).Name)
	}
	order, err := c.TopoGates()
	if err != nil {
		return err
	}
	for _, gid := range order {
		g := c.Gate(gid)
		names := make([]string, len(g.Inputs))
		for i, in := range g.Inputs {
			names[i] = c.Net(in).Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", c.Net(g.Output).Name, g.Type, strings.Join(names, ", "))
	}
	return bw.Flush()
}
