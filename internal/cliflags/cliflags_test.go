package cliflags

import (
	"flag"
	"reflect"
	"testing"
	"time"
)

// TestRegistration parses a representative command line through every
// helper to pin the shared spellings.
func TestRegistration(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	exec := Exec(fs)
	workers := Workers(fs, 0)
	fuse := Fuse(fs)
	guard := Guard(fs)
	deadline := Deadline(fs, 0)
	err := fs.Parse([]string{
		"-exec", "sharded", "-workers", "4", "-fuse", "-guard", "-deadline", "2s"})
	if err != nil {
		t.Fatal(err)
	}
	if *exec != "sharded" || *workers != 4 || !*fuse || !*guard || *deadline != 2*time.Second {
		t.Fatalf("parsed %q %d %v %v %v", *exec, *workers, *fuse, *guard, *deadline)
	}
}

func TestWorkersList(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	wl := WorkersList(fs, "first value used for -profile")
	if err := fs.Parse([]string{"-workers", "1, 2,8"}); err != nil {
		t.Fatal(err)
	}
	got, err := ParseWorkersList(*wl)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{1, 2, 8}) {
		t.Fatalf("got %v", got)
	}
	if ws, err := ParseWorkersList(""); err != nil || ws != nil {
		t.Fatalf("empty list: %v %v", ws, err)
	}
	for _, bad := range []string{"0", "x", "4,-1"} {
		if _, err := ParseWorkersList(bad); err == nil {
			t.Fatalf("%q parsed", bad)
		}
	}
}
