// Package cliflags registers the execution-related flags every udsim
// CLI shares — -exec, -workers, -fuse, -guard, -deadline — with one
// canonical spelling and help text each, so udsim, udbench, udlint,
// udchaos and udserve stay word-for-word consistent. Tool-specific
// nuance goes in an optional note appended to the canonical usage
// rather than a reworded flag.
package cliflags

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// usage joins the canonical help text with an optional per-tool note.
func usage(canonical string, note []string) string {
	if len(note) > 0 && note[0] != "" {
		return canonical + " (" + note[0] + ")"
	}
	return canonical
}

// Exec registers -exec: the multicore execution strategy for compiled
// engines.
func Exec(fs *flag.FlagSet, note ...string) *string {
	return fs.String("exec", "", usage(
		"multicore execution strategy for compiled engines: sequential, sharded, activity-gated, vector-batch, auto, native", note))
}

// Workers registers -workers: the worker count for the execution
// strategy.
func Workers(fs *flag.FlagSet, def int, note ...string) *int {
	return fs.Int("workers", def, usage(
		"worker count for the execution strategy (0 = GOMAXPROCS)", note))
}

// WorkersList registers -workers as a comma-separated list (the
// matrix-shaped tools: udbench sweeps several worker counts per run).
// Parse the value with ParseWorkersList.
func WorkersList(fs *flag.FlagSet, note ...string) *string {
	return fs.String("workers", "", usage(
		"comma-separated worker counts (default GOMAXPROCS)", note))
}

// ParseWorkersList parses a WorkersList value ("" means nil: the tool's
// default).
func ParseWorkersList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -workers value %q", f)
		}
		out = append(out, w)
	}
	return out, nil
}

// Fuse registers -fuse: the barrier-deleting level-fusion pass.
func Fuse(fs *flag.FlagSet, note ...string) *bool {
	return fs.Bool("fuse", false, usage(
		"merge sparse shard-plan levels and delete their barriers (parallel technique; sharded/activity-gated/auto -exec)", note))
}

// Guard registers -guard: the guarded supervisor.
func Guard(fs *flag.FlagSet, note ...string) *bool {
	return fs.Bool("guard", false, usage(
		"run under the guarded supervisor: panics/stalls degrade to sequential replay instead of crashing (compiled engines)", note))
}

// Deadline registers -deadline: the overall request/stream deadline.
func Deadline(fs *flag.FlagSet, def time.Duration, note ...string) *time.Duration {
	return fs.Duration("deadline", def, usage(
		"overall deadline for a guarded vector stream (0 = none)", note))
}
