// Package ckttest provides shared circuit fixtures and reference-waveform
// helpers for the engine test suites. It lives outside the _test files so
// that every engine package can cross-validate against the same corpus.
package ckttest

import (
	"math/rand"

	"udsim/internal/circuit"
	"udsim/internal/logic"
	"udsim/internal/refsim"
)

// Fig1 builds the paper's Fig. 1 circuit: D = A & B; E = C & D.
func Fig1() *circuit.Circuit {
	b := circuit.NewBuilder("fig1")
	a := b.Input("A")
	bb := b.Input("B")
	c := b.Input("C")
	d := b.Gate(logic.And, "D", a, bb)
	e := b.Gate(logic.And, "E", c, d)
	b.Output(e)
	return b.MustBuild()
}

// Fig4 builds the network of the paper's Fig. 4: D = A & B, E = D & C.
// Net D needs zero-insertion; net E has PC-set {1,2}.
func Fig4() *circuit.Circuit {
	b := circuit.NewBuilder("fig4")
	a := b.Input("A")
	bb := b.Input("B")
	c := b.Input("C")
	d := b.Gate(logic.And, "D", a, bb)
	e := b.Gate(logic.And, "E", d, c)
	b.Output(e)
	return b.MustBuild()
}

// Fig11 builds the paper's Fig. 11 reconvergent network that must retain
// one shift: B = NOT A; C = AND(A, B).
func Fig11() *circuit.Circuit {
	b := circuit.NewBuilder("fig11")
	a := b.Input("A")
	nb := b.Gate(logic.Not, "B", a)
	cc := b.Gate(logic.And, "C", a, nb)
	b.Output(cc)
	return b.MustBuild()
}

// Fig12 builds the paper's Fig. 12 fanout-free-looking network that still
// requires a shift: a three-stage path and a direct connection from the
// first net into the last gate, but through separate gates so there is no
// reconvergent fanout in the classical sense. Topology (from the figure):
//
//	I → G1 → n1 → G2 → n2 → G3 → n3
//	n1 also feeds G4; G4's output and n3 feed G5.
func Fig12() *circuit.Circuit {
	b := circuit.NewBuilder("fig12")
	i := b.Input("I")
	j := b.Input("J")
	n1 := b.Gate(logic.Buf, "N1", i)
	n2 := b.Gate(logic.Not, "N2", n1)
	n3 := b.Gate(logic.Buf, "N3", n2)
	n4 := b.Gate(logic.And, "N4", n1, j)
	o := b.Gate(logic.Or, "O", n3, n4)
	b.Output(o)
	return b.MustBuild()
}

// Random builds a random combinational DAG with the given number of gates
// and primary inputs. Every sink net is marked as an output; roughly one
// gate in eight also becomes an observable output so the monitored set is
// interesting. The structure depends only on r.
func Random(r *rand.Rand, gates, inputs int) *circuit.Circuit {
	b := circuit.NewBuilder("rand")
	pool := make([]circuit.NetID, 0, gates+inputs)
	for i := 0; i < inputs; i++ {
		pool = append(pool, b.Input(""))
	}
	types := []logic.GateType{
		logic.And, logic.Or, logic.Nand, logic.Nor,
		logic.Xor, logic.Xnor, logic.Not, logic.Buf,
	}
	fanout := make(map[circuit.NetID]int)
	for i := 0; i < gates; i++ {
		gt := types[r.Intn(len(types))]
		nin := gt.MinInputs()
		if gt.MaxInputs() == -1 {
			nin += r.Intn(3) // up to 4-input gates
		}
		ins := make([]circuit.NetID, nin)
		for j := range ins {
			// Bias toward recent nets so depth actually grows.
			var pick int
			if r.Intn(3) > 0 && len(pool) > inputs {
				lo := len(pool) * 2 / 3
				pick = lo + r.Intn(len(pool)-lo)
			} else {
				pick = r.Intn(len(pool))
			}
			ins[j] = pool[pick]
			fanout[ins[j]]++
		}
		out := b.Gate(gt, "", ins...)
		pool = append(pool, out)
	}
	for _, id := range pool[inputs:] {
		if fanout[id] == 0 {
			b.Output(id)
		} else if r.Intn(8) == 0 {
			b.Output(id)
		}
	}
	return b.MustBuild()
}

// Deep builds a long chain of alternating NOT/BUF gates with a side input
// XORed in every k gates, producing a circuit whose depth is ~length —
// useful for exercising multi-word bit-fields at small word sizes.
func Deep(length, k int) *circuit.Circuit {
	b := circuit.NewBuilder("deep")
	a := b.Input("A")
	side := b.Input("S")
	cur := a
	for i := 0; i < length; i++ {
		switch {
		case k > 0 && i%k == k-1:
			cur = b.Gate(logic.Xor, "", cur, side)
		case i%2 == 0:
			cur = b.Gate(logic.Not, "", cur)
		default:
			cur = b.Gate(logic.Buf, "", cur)
		}
	}
	b.Output(cur)
	return b.MustBuild()
}

// Waveforms computes the reference unit-delay history for a sequence of
// vectors starting from the all-zeros consistent state: result[v][t][net].
// It also returns the final settled state after the last vector.
func Waveforms(c *circuit.Circuit, vecs [][]bool, depth int) (hists [][][]bool, final []bool, err error) {
	prev, err := refsim.ConsistentState(c, make([]bool, len(c.Inputs)))
	if err != nil {
		return nil, nil, err
	}
	for _, vec := range vecs {
		h, err := refsim.UnitDelayHistory(c, prev, vec, depth)
		if err != nil {
			return nil, nil, err
		}
		hists = append(hists, h)
		prev = h[len(h)-1]
	}
	return hists, prev, nil
}
