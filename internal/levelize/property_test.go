package levelize

import (
	"sort"
	"testing"
	"testing/quick"
)

// TestUnionSortedProperties checks the PC-set union against a map-based
// model: the result must be the sorted deduplicated union, for arbitrary
// inputs (after sorting/deduping them into valid PC-set form).
func TestUnionSortedProperties(t *testing.T) {
	canon := func(xs []int) []int {
		m := map[int]bool{}
		for _, x := range xs {
			m[x&0xFF] = true // bound the domain; PC elements are small
		}
		out := make([]int, 0, len(m))
		for x := range m {
			out = append(out, x)
		}
		sort.Ints(out)
		return out
	}
	f := func(a, b []int) bool {
		ca, cb := canon(a), canon(b)
		got := unionSorted(append([]int(nil), ca...), cb)
		want := canon(append(append([]int(nil), ca...), cb...))
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestUnionSortedIdentities checks the algebraic identities the PC-set
// algorithm relies on: idempotence, commutativity, and the empty identity.
func TestUnionSortedIdentities(t *testing.T) {
	f := func(raw []int) bool {
		m := map[int]bool{}
		for _, x := range raw {
			m[x&0x3F] = true
		}
		a := make([]int, 0, len(m))
		for x := range m {
			a = append(a, x)
		}
		sort.Ints(a)

		// Idempotence: a ∪ a = a.
		self := unionSorted(append([]int(nil), a...), a)
		if len(self) != len(a) {
			return false
		}
		// Identity: a ∪ ∅ = a.
		empty := unionSorted(append([]int(nil), a...), nil)
		if len(empty) != len(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
