package levelize

import (
	"math/rand"
	"reflect"
	"testing"

	"udsim/internal/circuit"
	"udsim/internal/logic"
)

// buildFig4 builds the network of the paper's Fig. 4: D = A & B, E = D & C,
// with E monitored. PC-sets: A,B,C={0}, D={1}, E={1,2} — wait, E's driver
// is AND(D,C), so E = union({1},{0})+1 = {1,2}.
func buildFig4(t testing.TB) *circuit.Circuit {
	b := circuit.NewBuilder("fig4")
	a := b.Input("A")
	bb := b.Input("B")
	c := b.Input("C")
	d := b.Gate(logic.And, "D", a, bb)
	e := b.Gate(logic.And, "E", d, c)
	b.Output(e)
	return b.MustBuild()
}

func analyze(t testing.TB, c *circuit.Circuit) *Analysis {
	a, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func pcOf(t *testing.T, a *Analysis, name string) []int {
	t.Helper()
	id, ok := a.C.NetByName(name)
	if !ok {
		t.Fatalf("net %s missing", name)
	}
	return a.NetPC[id]
}

func TestFig4PCSets(t *testing.T) {
	c := buildFig4(t)
	a := analyze(t, c)
	want := map[string][]int{
		"A": {0}, "B": {0}, "C": {0},
		"D": {1},
		"E": {1, 2},
	}
	for name, pc := range want {
		if got := pcOf(t, a, name); !reflect.DeepEqual(got, pc) {
			t.Errorf("PC(%s) = %v, want %v", name, got, pc)
		}
	}
	if a.Depth != 2 || a.NumLevels() != 3 {
		t.Errorf("depth = %d, levels = %d; want 2, 3", a.Depth, a.NumLevels())
	}
}

func TestFig4ZeroInsertion(t *testing.T) {
	c := buildFig4(t)
	a := analyze(t, c)
	a.InsertZeros(c.Outputs)
	// D feeds the E-gate alongside C (minlevel 0); D's minlevel is 1, not
	// minimal, so D gets a zero (the paper's Fig. 3/4 discussion).
	if got := pcOf(t, a, "D"); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("PC(D) after zero insertion = %v, want [0 1]", got)
	}
	d, _ := c.NetByName("D")
	if !a.ZeroAdded[d] {
		t.Error("ZeroAdded[D] not set")
	}
	// Primary inputs already contain 0 and must not be flagged.
	aNet, _ := c.NetByName("A")
	if a.ZeroAdded[aNet] {
		t.Error("primary input flagged ZeroAdded")
	}
	// Idempotence.
	a.InsertZeros(c.Outputs)
	if got := pcOf(t, a, "D"); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("InsertZeros not idempotent: %v", got)
	}
}

func TestFig4OperandSelection(t *testing.T) {
	c := buildFig4(t)
	a := analyze(t, c)
	a.InsertZeros(c.Outputs)
	d, _ := c.NetByName("D")
	cn, _ := c.NetByName("C")
	// E_1 = D_0 & C_0 (paper Fig. 4).
	if got := a.OperandTime(d, 1); got != 0 {
		t.Errorf("operand time of D for E@1 = %d, want 0", got)
	}
	if got := a.OperandTime(cn, 1); got != 0 {
		t.Errorf("operand time of C for E@1 = %d, want 0", got)
	}
	// E_2 = D_1 & C_0.
	if got := a.OperandTime(d, 2); got != 1 {
		t.Errorf("operand time of D for E@2 = %d, want 1", got)
	}
	if got := a.OperandTime(cn, 2); got != 0 {
		t.Errorf("operand time of C for E@2 = %d, want 0", got)
	}
}

func TestOperandTimePanicsWithoutZero(t *testing.T) {
	c := buildFig4(t)
	a := analyze(t, c)
	d, _ := c.NetByName("D")
	defer func() {
		if recover() == nil {
			t.Error("expected panic when no PC element below t exists")
		}
	}()
	a.OperandTime(d, 1) // PC(D)={1}, nothing below 1 without zero insertion
}

func TestFig11Reconvergence(t *testing.T) {
	// Fig. 11: B = NOT A; C = AND(A, B). PC(C) = {1, 2}.
	b := circuit.NewBuilder("fig11")
	a := b.Input("A")
	nb := b.Gate(logic.Not, "B", a)
	cc := b.Gate(logic.And, "C", a, nb)
	b.Output(cc)
	c := b.MustBuild()
	an := analyze(t, c)
	if got := pcOf(t, an, "C"); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("PC(C) = %v, want [1 2]", got)
	}
	if got := pcOf(t, an, "B"); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("PC(B) = %v, want [1]", got)
	}
}

func TestConstantGate(t *testing.T) {
	b := circuit.NewBuilder("const")
	one := b.Gate(logic.Const1, "ONE")
	a := b.Input("A")
	o := b.Gate(logic.And, "O", a, one)
	b.Output(o)
	c := b.MustBuild()
	an := analyze(t, c)
	if got := pcOf(t, an, "ONE"); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("PC(ONE) = %v, want [0]", got)
	}
	if got := pcOf(t, an, "O"); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("PC(O) = %v, want [1]", got)
	}
}

func TestWiredNetPCUnion(t *testing.T) {
	// Wired net with drivers at different depths: PC is the union of the
	// drivers' PC-sets (§2 step 4a).
	b := circuit.NewBuilder("wired")
	a := b.Input("A")
	x := b.Gate(logic.Not, "X", a) // level 1
	w := b.Net("W")
	b.GateInto(logic.Buf, w, a) // contributes {1}
	b.GateInto(logic.Buf, w, x) // contributes {2}
	b.Wired(w, circuit.WiredAnd)
	o := b.Gate(logic.Not, "O", w)
	b.Output(o)
	c := b.MustBuild()
	an := analyze(t, c)
	if got := pcOf(t, an, "W"); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("PC(W) = %v, want [1 2]", got)
	}
}

func TestSequentialRejected(t *testing.T) {
	b := circuit.NewBuilder("seq")
	q := b.FlipFlop("Q", circuit.NoNet)
	d := b.Gate(logic.Not, "D", q)
	b.BindFlipFlop(q, d)
	b.Output(d)
	c := b.MustBuild()
	if _, err := Analyze(c); err == nil {
		t.Fatal("expected error for sequential circuit")
	}
}

func TestLevelOrderIsLevelized(t *testing.T) {
	c := randomDAG(rand.New(rand.NewSource(7)), 40, 5)
	a := analyze(t, c)
	prev := 0
	for _, g := range a.LevelOrder {
		l := a.GateLevel[g]
		if l < prev {
			t.Fatalf("LevelOrder not monotone: level %d after %d", l, prev)
		}
		prev = l
	}
	if len(a.LevelOrder) != c.NumGates() {
		t.Fatalf("LevelOrder has %d entries, want %d", len(a.LevelOrder), c.NumGates())
	}
}

// enumeratePathLengths returns the set of path lengths (gate counts) from
// primary inputs to each net by brute-force DFS. Only usable on tiny
// circuits.
func enumeratePathLengths(c *circuit.Circuit) map[circuit.NetID]map[int]bool {
	memo := make(map[circuit.NetID]map[int]bool)
	var netLengths func(n circuit.NetID) map[int]bool
	netLengths = func(n circuit.NetID) map[int]bool {
		if m, ok := memo[n]; ok {
			return m
		}
		m := make(map[int]bool)
		memo[n] = m
		net := c.Net(n)
		if len(net.Drivers) == 0 {
			m[0] = true
			return m
		}
		for _, g := range net.Drivers {
			gate := c.Gate(g)
			if len(gate.Inputs) == 0 {
				// Constant gate: the analyzer assigns PC {0}, same as a
				// constant signal (§2 step 2).
				m[0] = true
				continue
			}
			for _, in := range gate.Inputs {
				for l := range netLengths(in) {
					m[l+1] = true
				}
			}
		}
		return m
	}
	for i := range c.Nets {
		netLengths(circuit.NetID(i))
	}
	return memo
}

// randomDAG builds a small random DAG for property testing. Every gate
// output is monitored, which is harmless for analysis tests.
func randomDAG(r *rand.Rand, gates, inputs int) *circuit.Circuit {
	b := circuit.NewBuilder("rand")
	pool := make([]circuit.NetID, 0, gates+inputs)
	for i := 0; i < inputs; i++ {
		pool = append(pool, b.Input(""))
	}
	types := []logic.GateType{logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Not, logic.Buf}
	for i := 0; i < gates; i++ {
		gt := types[r.Intn(len(types))]
		nin := gt.MinInputs()
		if gt.MaxInputs() == -1 && r.Intn(2) == 0 {
			nin++
		}
		ins := make([]circuit.NetID, nin)
		for j := range ins {
			ins[j] = pool[r.Intn(len(pool))]
		}
		pool = append(pool, b.Gate(gt, "", ins...))
	}
	for _, id := range pool[inputs:] {
		b.Output(id)
	}
	return b.MustBuild()
}

// TestPCSetEqualsPathLengths is the fundamental Lemma 1 check: the PC-set
// of every net equals the set of path lengths from the primary inputs.
func TestPCSetEqualsPathLengths(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		c := randomDAG(r, 12, 3)
		a := analyze(t, c)
		lengths := enumeratePathLengths(c)
		for i := range c.Nets {
			id := circuit.NetID(i)
			got := a.NetPC[id]
			want := lengths[id]
			if len(got) != len(want) {
				t.Fatalf("trial %d net %s: PC %v vs path lengths %v", trial, c.Nets[i].Name, got, keys(want))
			}
			for _, v := range got {
				if !want[v] {
					t.Fatalf("trial %d net %s: PC %v vs path lengths %v", trial, c.Nets[i].Name, got, keys(want))
				}
			}
		}
	}
}

func keys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestPCBounds checks min/max consistency: minlevel = min(PC), level =
// max(PC), PC size ≤ level − minlevel + 1.
func TestPCBounds(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		c := randomDAG(r, 60, 6)
		a := analyze(t, c)
		for i := range c.Nets {
			pc := a.NetPC[i]
			if a.NetMin[i] != pc[0] || a.NetLevel[i] != pc[len(pc)-1] {
				t.Fatalf("net %d: min/level inconsistent with PC %v", i, pc)
			}
			if len(pc) > a.NetLevel[i]-a.NetMin[i]+1 {
				t.Fatalf("net %d: PC size %d exceeds level-minlevel+1", i, len(pc))
			}
			for j := 1; j < len(pc); j++ {
				if pc[j] <= pc[j-1] {
					t.Fatalf("net %d: PC not strictly ascending: %v", i, pc)
				}
			}
		}
	}
}

func TestPCSizeCounts(t *testing.T) {
	c := buildFig4(t)
	a := analyze(t, c)
	// A,B,C,D have one element each; E has {1,2}: total 6.
	if got := a.PCSize(); got != 6 {
		t.Errorf("PCSize = %d, want 6", got)
	}
	a2 := analyze(t, c)
	a2.InsertZeros(c.Outputs)
	if a2.PCSize() != a.PCSize()+1 { // the zero added to D
		t.Errorf("PCSize after zero insertion = %d, want %d", a2.PCSize(), a.PCSize()+1)
	}
	if got := a.GatePCSize(); got != 3 { // D-gate 1 element, E-gate 2 elements
		t.Errorf("GatePCSize = %d, want 3", got)
	}
}
