// Package levelize implements the analyses of §§1–2 of the paper: the
// classic levelization used by zero-delay LCC simulation, the minlevel
// variation, and their generalization to PC-sets (potential-change sets).
//
// The level of a net is the length of the longest path from the primary
// inputs; the minlevel is the length of the shortest path. The PC-set of a
// net is the set of all path lengths, equivalently (Lemma 1) the set of
// times at which the net is permitted to change value under the unit-delay
// model. Primary inputs and constants carry PC-set {0}.
package levelize

import (
	"fmt"

	"udsim/internal/circuit"
)

// Analysis holds levels, minlevels and PC-sets for one combinational
// circuit. All slices are indexed by NetID or GateID respectively; PC-sets
// are sorted ascending and never empty.
type Analysis struct {
	C *circuit.Circuit

	NetLevel  []int
	NetMin    []int
	GateLevel []int
	GateMin   []int

	NetPC  [][]int
	GatePC [][]int

	// Depth is the maximum net level: the number of gate delays needed
	// for any input change to propagate everywhere. The parallel
	// technique allocates Depth+1 bit positions per net.
	Depth int

	// LevelOrder lists all gates sorted by ascending level (ties broken
	// by gate ID): the order in which compiled code is generated.
	LevelOrder []circuit.GateID

	// ZeroAdded marks nets whose PC-set had the element 0 inserted by
	// InsertZeros because some consumer needs the net's value from the
	// previous input vector (Fig. 3 of the paper).
	ZeroAdded []bool

	// GateDelay is the per-gate delay the analysis was computed with
	// (all ones for the paper's unit-delay model).
	GateDelay []int
}

// Analyze computes levels, minlevels and PC-sets for a combinational
// circuit using the queue algorithm of §2. Sequential circuits must be
// lowered with BreakFlipFlops first.
func Analyze(c *circuit.Circuit) (*Analysis, error) {
	return AnalyzeWithDelays(c, nil)
}

// AnalyzeWithDelays generalizes the analysis to nominal integer gate
// delays: a gate's PC-set is the union of its input nets' PC-sets with
// every element incremented by the gate's own delay, so a PC element is
// the total delay of some input-to-net path. With all delays equal to one
// this is exactly §2's algorithm; the generalization is what the paper's
// closing sentence ("adapt them to even more accurate timing models")
// asks for, and the PC-set compiler consumes it unchanged apart from
// operand selection. gateDelay is indexed by GateID (nil = all ones);
// every delay must be ≥ 1.
func AnalyzeWithDelays(c *circuit.Circuit, gateDelay []int) (*Analysis, error) {
	if !c.Combinational() {
		return nil, fmt.Errorf("levelize: circuit %s is sequential; break flip-flops first", c.Name)
	}
	if gateDelay != nil {
		if len(gateDelay) != c.NumGates() {
			return nil, fmt.Errorf("levelize: %d delays for %d gates", len(gateDelay), c.NumGates())
		}
		for i, d := range gateDelay {
			if d < 1 {
				return nil, fmt.Errorf("levelize: gate %d has non-positive delay %d", i, d)
			}
		}
	}
	if gateDelay == nil {
		gateDelay = make([]int, c.NumGates())
		for i := range gateDelay {
			gateDelay[i] = 1
		}
	}
	a := &Analysis{
		C:         c,
		NetLevel:  make([]int, c.NumNets()),
		NetMin:    make([]int, c.NumNets()),
		GateLevel: make([]int, c.NumGates()),
		GateMin:   make([]int, c.NumGates()),
		NetPC:     make([][]int, c.NumNets()),
		GatePC:    make([][]int, c.NumGates()),
		ZeroAdded: make([]bool, c.NumNets()),
		GateDelay: gateDelay,
	}

	// Step 1: counts. For a gate, the number of input pins; for a net,
	// the number of driving gates.
	gateCount := make([]int, c.NumGates())
	netCount := make([]int, c.NumNets())
	for i := range c.Gates {
		gateCount[i] = len(c.Gates[i].Inputs)
	}
	for i := range c.Nets {
		netCount[i] = len(c.Nets[i].Drivers)
	}

	// The processing queue holds nets and gates; encode nets as
	// non-negative IDs and gates as ^id.
	queue := make([]int, 0, c.NumNets()+c.NumGates())
	for i := range c.Nets {
		if netCount[i] == 0 {
			queue = append(queue, i)
		}
	}
	for i := range c.Gates {
		if gateCount[i] == 0 { // constant gates
			queue = append(queue, ^i)
		}
	}

	processedNets, processedGates := 0, 0
	for len(queue) > 0 {
		item := queue[0]
		queue = queue[1:]
		if item >= 0 {
			// Step 4: a net.
			n := &c.Nets[item]
			u := []int{}
			for _, g := range n.Drivers {
				u = unionSorted(u, a.GatePC[g])
			}
			if len(u) == 0 {
				u = []int{0} // primary input or constant-free source
			}
			a.NetPC[item] = u
			a.NetMin[item] = u[0]
			a.NetLevel[item] = u[len(u)-1]
			processedNets++
			for _, g := range n.Fanout {
				gateCount[g]--
				if gateCount[g] == 0 {
					queue = append(queue, ^int(g))
				}
			}
		} else {
			// Step 5: a gate.
			gi := ^item
			g := &c.Gates[gi]
			d := gateDelay[gi]
			u := []int{}
			for _, in := range g.Inputs {
				u = unionSorted(u, a.NetPC[in])
			}
			if len(u) == 0 {
				u = []int{-d} // constant gate: output PC {0}
			}
			up := make([]int, len(u))
			for i, v := range u {
				up[i] = v + d
			}
			a.GatePC[gi] = up
			a.GateMin[gi] = up[0]
			a.GateLevel[gi] = up[len(up)-1]
			processedGates++
			out := g.Output
			netCount[out]--
			if netCount[out] == 0 {
				queue = append(queue, int(out))
			}
		}
	}
	if processedNets != c.NumNets() || processedGates != c.NumGates() {
		return nil, fmt.Errorf("levelize: circuit %s is cyclic (%d/%d nets, %d/%d gates processed)",
			c.Name, processedNets, c.NumNets(), processedGates, c.NumGates())
	}

	for _, l := range a.NetLevel {
		if l > a.Depth {
			a.Depth = l
		}
	}
	a.LevelOrder = levelSort(c, a.GateLevel)
	return a, nil
}

// levelSort returns gate IDs ordered by ascending level, ties by ID, using
// a counting sort over levels (levels are small and dense).
func levelSort(c *circuit.Circuit, gateLevel []int) []circuit.GateID {
	maxL := 0
	for _, l := range gateLevel {
		if l > maxL {
			maxL = l
		}
	}
	buckets := make([][]circuit.GateID, maxL+1)
	for i := range c.Gates {
		l := gateLevel[i]
		buckets[l] = append(buckets[l], circuit.GateID(i))
	}
	out := make([]circuit.GateID, 0, c.NumGates())
	for _, b := range buckets {
		out = append(out, b...)
	}
	return out
}

// InsertZeros performs the zero-insertion step of §2 (Fig. 3): for every
// gate, any input net whose minlevel is not minimal among that gate's
// inputs must retain its previous-vector value, so the element 0 is added
// to its PC-set. The monitored nets (if any) are treated as the inputs of
// one additional PRINT pseudo-gate. The ZeroAdded flags record which nets
// were extended. Primary inputs already contain 0 and are never flagged.
//
// InsertZeros mutates the receiver and is idempotent.
func (a *Analysis) InsertZeros(monitored []circuit.NetID) {
	addZero := func(net circuit.NetID) {
		pc := a.NetPC[net]
		if pc[0] == 0 {
			return
		}
		a.NetPC[net] = append([]int{0}, pc...)
		a.ZeroAdded[net] = true
	}
	group := func(nets []circuit.NetID) {
		if len(nets) == 0 {
			return
		}
		min := a.NetMin[nets[0]]
		for _, n := range nets[1:] {
			if a.NetMin[n] < min {
				min = a.NetMin[n]
			}
		}
		for _, n := range nets {
			if a.NetMin[n] != min {
				addZero(n)
			}
		}
	}
	for i := range a.C.Gates {
		group(a.C.Gates[i].Inputs)
	}
	group(monitored)
}

// PCSize returns the total number of PC-set elements over all nets: the
// number of net variables the PC-set method allocates (§2) and a good
// predictor of its generated code size.
func (a *Analysis) PCSize() int {
	n := 0
	for _, pc := range a.NetPC {
		n += len(pc)
	}
	return n
}

// GatePCSize returns the total number of gate PC-set elements, i.e. the
// number of gate simulations the PC-set method generates (excluding the
// zero elements, which generate initialization moves instead).
func (a *Analysis) GatePCSize() int {
	n := 0
	for _, pc := range a.GatePC {
		n += len(pc)
	}
	return n
}

// NumLevels returns the number of distinct time points 0..Depth, i.e. the
// bit-field width n of the parallel technique before optimization.
func (a *Analysis) NumLevels() int { return a.Depth + 1 }

// OperandAt returns the PC element of net `in` that holds the net's value
// at time t: the largest element ≤ t. Zero-insertion guarantees such an
// element exists for compiled operand selection; OperandAt panics
// otherwise.
func (a *Analysis) OperandAt(in circuit.NetID, t int) int {
	return a.OperandTime(in, t+1)
}

// OperandTime returns, for a gate simulation generated at PC element t,
// the PC element of input net `in` whose variable must be used: the
// largest element strictly smaller than t. Zero-insertion guarantees such
// an element exists; OperandTime panics if it does not, since that
// indicates InsertZeros was skipped.
func (a *Analysis) OperandTime(in circuit.NetID, t int) int {
	pc := a.NetPC[in]
	// Binary search for the largest element < t.
	lo, hi := 0, len(pc)
	for lo < hi {
		mid := (lo + hi) / 2
		if pc[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		panic(fmt.Sprintf("levelize: no PC element of net %d below time %d (zero-insertion missing?)", in, t))
	}
	return pc[lo-1]
}

// unionSorted merges two ascending int slices without duplicates.
func unionSorted(a, b []int) []int {
	if len(a) == 0 {
		return append([]int(nil), b...)
	}
	if len(b) == 0 {
		return a
	}
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
