package refsim

import (
	"testing"

	"udsim/internal/circuit"
	"udsim/internal/logic"
)

func fig4(t testing.TB) *circuit.Circuit {
	b := circuit.NewBuilder("fig4")
	a := b.Input("A")
	bb := b.Input("B")
	c := b.Input("C")
	d := b.Gate(logic.And, "D", a, bb)
	e := b.Gate(logic.And, "E", d, c)
	b.Output(e)
	return b.MustBuild()
}

func TestEvaluateTruth(t *testing.T) {
	c := fig4(t)
	e, _ := c.NetByName("E")
	for mask := 0; mask < 8; mask++ {
		in := []bool{mask&1 == 1, mask&2 == 2, mask&4 == 4}
		vals, err := Evaluate(c, in)
		if err != nil {
			t.Fatal(err)
		}
		want := in[0] && in[1] && in[2]
		if vals[e] != want {
			t.Errorf("E(%v) = %v, want %v", in, vals[e], want)
		}
	}
}

func TestEvaluateWidthError(t *testing.T) {
	c := fig4(t)
	if _, err := Evaluate(c, []bool{true}); err == nil {
		t.Fatal("expected width error")
	}
}

func TestEvaluateWired(t *testing.T) {
	for _, tc := range []struct {
		op   circuit.WiredOp
		want bool // for drivers 1 and 0
	}{
		{circuit.WiredAnd, false},
		{circuit.WiredOr, true},
	} {
		b := circuit.NewBuilder("w")
		a := b.Input("A")
		bb := b.Input("B")
		w := b.Net("W")
		b.GateInto(logic.Buf, w, a)
		b.GateInto(logic.Buf, w, bb)
		b.Wired(w, tc.op)
		b.Output(w)
		c := b.MustBuild()
		vals, err := Evaluate(c, []bool{true, false})
		if err != nil {
			t.Fatal(err)
		}
		wid, _ := c.NetByName("W")
		if vals[wid] != tc.want {
			t.Errorf("wired %v of (1,0) = %v, want %v", tc.op, vals[wid], tc.want)
		}
	}
}

func TestUnitDelayHistoryGlitch(t *testing.T) {
	// B = NOT A; C = AND(A,B). 0→1 on A glitches C at t=1.
	b := circuit.NewBuilder("glitch")
	a := b.Input("A")
	nb := b.Gate(logic.Not, "B", a)
	cc := b.Gate(logic.And, "C", a, nb)
	b.Output(cc)
	c := b.MustBuild()
	prev, err := ConsistentState(c, []bool{false})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := UnitDelayHistory(c, prev, []bool{true}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cid, _ := c.NetByName("C")
	if hist[0][cid] != false || hist[1][cid] != true || hist[2][cid] != false {
		t.Errorf("C history = %v %v %v, want 0 1 0", hist[0][cid], hist[1][cid], hist[2][cid])
	}
}

func TestUnitDelayHistoryHoldsWhenQuiescent(t *testing.T) {
	c := fig4(t)
	prev, _ := ConsistentState(c, []bool{true, true, true})
	// Apply the identical vector: nothing may change at any time.
	hist, err := UnitDelayHistory(c, prev, []bool{true, true, true}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for tm := range hist {
		for n := range hist[tm] {
			if hist[tm][n] != prev[n] {
				t.Fatalf("net %d changed at t=%d with identical vector", n, tm)
			}
		}
	}
}

func TestUnitDelayHistoryErrors(t *testing.T) {
	c := fig4(t)
	prev := make([]bool, c.NumNets())
	if _, err := UnitDelayHistory(c, prev, []bool{true}, 2); err == nil {
		t.Error("expected width error")
	}
	if _, err := UnitDelayHistory(c, []bool{true}, []bool{true, true, true}, 2); err == nil {
		t.Error("expected prev-state error")
	}
}

func TestConsistentStateIsFixedPoint(t *testing.T) {
	c := fig4(t)
	in := []bool{true, false, true}
	st, err := ConsistentState(c, in)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := UnitDelayHistory(c, st, in, 2)
	if err != nil {
		t.Fatal(err)
	}
	last := hist[len(hist)-1]
	for n := range st {
		if last[n] != st[n] {
			t.Fatalf("consistent state is not a fixed point at net %d", n)
		}
	}
}
