// Package refsim is a deliberately simple reference simulator used as the
// correctness oracle for every compiled engine and for computing the
// consistent initial state all engines share.
//
// It evaluates a combinational circuit in topological order (zero-delay
// semantics) and, in unit-delay mode, performs a naive synchronous sweep:
// at each time step every gate output for time t is computed from net
// values at time t−1. The unit-delay mode is quadratic and exists only to
// validate the fast engines on small circuits.
package refsim

import (
	"fmt"

	"udsim/internal/circuit"
)

// Evaluate computes the zero-delay steady state of a combinational circuit
// for the given primary-input assignment (indexed like c.Inputs). Wired
// nets resolve with their declared wired function. The result is indexed
// by NetID. Callers that evaluate repeatedly should build an Evaluator
// once instead — this convenience wrapper re-derives the topological
// order and re-allocates every buffer per call.
func Evaluate(c *circuit.Circuit, inputs []bool) ([]bool, error) {
	e, err := NewEvaluator(c)
	if err != nil {
		return nil, err
	}
	vals, err := e.Evaluate(inputs)
	if err != nil {
		return nil, err
	}
	return vals, nil
}

// Evaluator computes zero-delay steady states repeatedly without
// allocating: the topological order, value array and wired-net buffers
// are built once and reused across Evaluate calls. Not safe for
// concurrent use.
type Evaluator struct {
	c       *circuit.Circuit
	order   []circuit.GateID
	resolve func(n *circuit.Net, outs []bool) bool
	vals    []bool
	done    []int
	outBuf  map[circuit.NetID][]bool
	ins     []bool
}

// NewEvaluator builds the reusable zero-delay oracle for a circuit.
func NewEvaluator(c *circuit.Circuit) (*Evaluator, error) {
	order, err := c.TopoGates()
	if err != nil {
		return nil, err
	}
	e := &Evaluator{
		c:       c,
		order:   order,
		resolve: makeResolver(c),
		vals:    make([]bool, c.NumNets()),
		done:    make([]int, c.NumNets()),
		outBuf:  make(map[circuit.NetID][]bool, 4),
		ins:     make([]bool, 0, 8),
	}
	for i := range c.Nets {
		n := &c.Nets[i]
		if len(n.Drivers) > 1 {
			e.outBuf[n.ID] = make([]bool, 0, len(n.Drivers))
		}
	}
	return e, nil
}

// Evaluate computes the steady state for one input assignment. The
// returned slice is owned by the Evaluator and overwritten by the next
// call.
func (e *Evaluator) Evaluate(inputs []bool) ([]bool, error) {
	c := e.c
	if len(inputs) != len(c.Inputs) {
		return nil, fmt.Errorf("refsim: %d input values for %d primary inputs", len(inputs), len(c.Inputs))
	}
	for i := range e.vals {
		e.vals[i] = false
	}
	for i, id := range c.Inputs {
		e.vals[id] = inputs[i]
	}
	for id := range e.outBuf {
		e.done[id] = 0
		e.outBuf[id] = e.outBuf[id][:0]
	}
	for _, gid := range e.order {
		g := c.Gate(gid)
		e.ins = e.ins[:0]
		for _, in := range g.Inputs {
			e.ins = append(e.ins, e.vals[in])
		}
		out := g.Type.EvalBool(e.ins)
		n := c.Net(g.Output)
		if len(n.Drivers) > 1 {
			buf := append(e.outBuf[n.ID], out)
			e.outBuf[n.ID] = buf
			e.done[n.ID]++
			if e.done[n.ID] == len(n.Drivers) {
				e.vals[n.ID] = e.resolve(n, buf)
			}
		} else {
			e.vals[n.ID] = out
		}
	}
	return e.vals, nil
}

func makeResolver(c *circuit.Circuit) func(n *circuit.Net, outs []bool) bool {
	return func(n *circuit.Net, outs []bool) bool {
		v := outs[0]
		for _, o := range outs[1:] {
			if n.Wired == circuit.WiredOr {
				v = v || o
			} else {
				v = v && o
			}
		}
		return v
	}
}

// UnitDelayHistory simulates one input vector under the unit-delay model
// by naive synchronous sweeping and returns, for every net, its value at
// every time step 0..depth. prev is the net state carried over from the
// previous vector (indexed by NetID); the returned final state (time
// depth) can be passed as prev for the next vector.
//
// Semantics: at time 0 the primary inputs take their new values and every
// other net holds its previous value; at time t ≥ 1 each gate output takes
// the value computed from its input values at time t−1. Wired nets resolve
// instantaneously (the paper treats wired connections as part of the net).
func UnitDelayHistory(c *circuit.Circuit, prev []bool, inputs []bool, depth int) ([][]bool, error) {
	if len(inputs) != len(c.Inputs) {
		return nil, fmt.Errorf("refsim: %d input values for %d primary inputs", len(inputs), len(c.Inputs))
	}
	if len(prev) != c.NumNets() {
		return nil, fmt.Errorf("refsim: prev state has %d nets, want %d", len(prev), c.NumNets())
	}
	resolve := makeResolver(c)
	hist := make([][]bool, depth+1)
	cur := append([]bool(nil), prev...)
	for i, id := range c.Inputs {
		cur[id] = inputs[i]
	}
	hist[0] = cur
	ins := make([]bool, 0, 8)
	for t := 1; t <= depth; t++ {
		next := append([]bool(nil), hist[t-1]...)
		// Primary inputs hold; every gate recomputes from time t−1.
		outs := make(map[circuit.NetID][]bool)
		for gi := range c.Gates {
			g := &c.Gates[gi]
			ins = ins[:0]
			for _, in := range g.Inputs {
				ins = append(ins, hist[t-1][in])
			}
			v := g.Type.EvalBool(ins)
			n := c.Net(g.Output)
			if len(n.Drivers) > 1 {
				outs[n.ID] = append(outs[n.ID], v)
			} else {
				next[n.ID] = v
			}
		}
		for id, vs := range outs {
			next[id] = resolve(c.Net(id), vs)
		}
		hist[t] = next
	}
	return hist, nil
}

// ConsistentState returns the settled zero-delay state for the given input
// assignment: the shared "previous vector" state every engine starts from.
func ConsistentState(c *circuit.Circuit, inputs []bool) ([]bool, error) {
	return Evaluate(c, inputs)
}
