// Package refsim is a deliberately simple reference simulator used as the
// correctness oracle for every compiled engine and for computing the
// consistent initial state all engines share.
//
// It evaluates a combinational circuit in topological order (zero-delay
// semantics) and, in unit-delay mode, performs a naive synchronous sweep:
// at each time step every gate output for time t is computed from net
// values at time t−1. The unit-delay mode is quadratic and exists only to
// validate the fast engines on small circuits.
package refsim

import (
	"fmt"

	"udsim/internal/circuit"
)

// Evaluate computes the zero-delay steady state of a combinational circuit
// for the given primary-input assignment (indexed like c.Inputs). Wired
// nets resolve with their declared wired function. The result is indexed
// by NetID.
func Evaluate(c *circuit.Circuit, inputs []bool) ([]bool, error) {
	if len(inputs) != len(c.Inputs) {
		return nil, fmt.Errorf("refsim: %d input values for %d primary inputs", len(inputs), len(c.Inputs))
	}
	order, err := c.TopoGates()
	if err != nil {
		return nil, err
	}
	vals := make([]bool, c.NumNets())
	for i, id := range c.Inputs {
		vals[id] = inputs[i]
	}
	resolve := makeResolver(c)
	done := make([]int, c.NumNets()) // drivers evaluated so far
	outBuf := make(map[circuit.NetID][]bool, 4)
	for i := range c.Nets {
		n := &c.Nets[i]
		if len(n.Drivers) > 1 {
			outBuf[n.ID] = make([]bool, 0, len(n.Drivers))
		}
	}
	ins := make([]bool, 0, 8)
	for _, gid := range order {
		g := c.Gate(gid)
		ins = ins[:0]
		for _, in := range g.Inputs {
			ins = append(ins, vals[in])
		}
		out := g.Type.EvalBool(ins)
		n := c.Net(g.Output)
		if len(n.Drivers) > 1 {
			buf := append(outBuf[n.ID], out)
			outBuf[n.ID] = buf
			done[n.ID]++
			if done[n.ID] == len(n.Drivers) {
				vals[n.ID] = resolve(n, buf)
			}
		} else {
			vals[n.ID] = out
		}
	}
	return vals, nil
}

func makeResolver(c *circuit.Circuit) func(n *circuit.Net, outs []bool) bool {
	return func(n *circuit.Net, outs []bool) bool {
		v := outs[0]
		for _, o := range outs[1:] {
			if n.Wired == circuit.WiredOr {
				v = v || o
			} else {
				v = v && o
			}
		}
		return v
	}
}

// UnitDelayHistory simulates one input vector under the unit-delay model
// by naive synchronous sweeping and returns, for every net, its value at
// every time step 0..depth. prev is the net state carried over from the
// previous vector (indexed by NetID); the returned final state (time
// depth) can be passed as prev for the next vector.
//
// Semantics: at time 0 the primary inputs take their new values and every
// other net holds its previous value; at time t ≥ 1 each gate output takes
// the value computed from its input values at time t−1. Wired nets resolve
// instantaneously (the paper treats wired connections as part of the net).
func UnitDelayHistory(c *circuit.Circuit, prev []bool, inputs []bool, depth int) ([][]bool, error) {
	if len(inputs) != len(c.Inputs) {
		return nil, fmt.Errorf("refsim: %d input values for %d primary inputs", len(inputs), len(c.Inputs))
	}
	if len(prev) != c.NumNets() {
		return nil, fmt.Errorf("refsim: prev state has %d nets, want %d", len(prev), c.NumNets())
	}
	resolve := makeResolver(c)
	hist := make([][]bool, depth+1)
	cur := append([]bool(nil), prev...)
	for i, id := range c.Inputs {
		cur[id] = inputs[i]
	}
	hist[0] = cur
	ins := make([]bool, 0, 8)
	for t := 1; t <= depth; t++ {
		next := append([]bool(nil), hist[t-1]...)
		// Primary inputs hold; every gate recomputes from time t−1.
		outs := make(map[circuit.NetID][]bool)
		for gi := range c.Gates {
			g := &c.Gates[gi]
			ins = ins[:0]
			for _, in := range g.Inputs {
				ins = append(ins, hist[t-1][in])
			}
			v := g.Type.EvalBool(ins)
			n := c.Net(g.Output)
			if len(n.Drivers) > 1 {
				outs[n.ID] = append(outs[n.ID], v)
			} else {
				next[n.ID] = v
			}
		}
		for id, vs := range outs {
			next[id] = resolve(c.Net(id), vs)
		}
		hist[t] = next
	}
	return hist, nil
}

// ConsistentState returns the settled zero-delay state for the given input
// assignment: the shared "previous vector" state every engine starts from.
func ConsistentState(c *circuit.Circuit, inputs []bool) ([]bool, error) {
	return Evaluate(c, inputs)
}
