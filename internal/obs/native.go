package obs

import "time"

// Native-backend counters: the observability face of the subprocess
// supervisor (internal/native). The supervisor records child builds,
// respawns, protocol violations, in-process fallbacks and frame traffic
// here, and WriteText exports them as udsim_native_* families next to
// the udsim_guard_* degradation counters.
//
// All Add* methods follow the package contract: atomic,
// allocation-free, safe for concurrent use, and a nil *Observer check
// at the caller is the entire disabled cost. Like the guard counters
// they survive Attach (see the field comment in obs.go).

// AddNativeBuild counts one out-of-process `go build` of a child, with
// its wall time.
func (o *Observer) AddNativeBuild(d time.Duration) {
	o.nativeBuilds.Add(1)
	o.nativeBuildNanos.Add(int64(d))
}

// AddNativeRespawn counts one supervisor respawn of a crashed, wedged
// or protocol-violating child.
func (o *Observer) AddNativeRespawn() { o.nativeRespawns.Add(1) }

// AddNativeProtocolError counts one framing violation (CRC mismatch,
// truncated frame, sequence desync, oversized payload, bad handshake).
func (o *Observer) AddNativeProtocolError() { o.nativeProtoErrs.Add(1) }

// AddNativeFallback counts one batch completed by the in-process engine
// after the native child was quarantined or faulted mid-stream.
func (o *Observer) AddNativeFallback() { o.nativeFallbacks.Add(1) }

// AddNativeFramesSent counts n protocol frames written to the child.
func (o *Observer) AddNativeFramesSent(n int64) { o.nativeFramesOut.Add(n) }

// AddNativeFramesReceived counts n protocol frames read from the child.
func (o *Observer) AddNativeFramesReceived(n int64) { o.nativeFramesIn.Add(n) }

// NativeStats is the native-backend section of a Snapshot.
type NativeStats struct {
	// Builds counts out-of-process child builds; BuildNanos their total
	// wall time.
	Builds     int64 `json:"builds"`
	BuildNanos int64 `json:"build_ns"`
	// Respawns counts supervisor respawns, ProtocolErrors the framing
	// violations, Fallbacks the batches completed in-process after a
	// fault or quarantine.
	Respawns       int64 `json:"respawns"`
	ProtocolErrors int64 `json:"protocol_errors"`
	Fallbacks      int64 `json:"fallbacks"`
	// FramesSent/FramesReceived count protocol frames by direction.
	FramesSent     int64 `json:"frames_sent"`
	FramesReceived int64 `json:"frames_received"`
}

// nativeStats reads the native counters into a coherent NativeStats.
func (o *Observer) nativeStats() NativeStats {
	return NativeStats{
		Builds:         o.nativeBuilds.Load(),
		BuildNanos:     o.nativeBuildNanos.Load(),
		Respawns:       o.nativeRespawns.Load(),
		ProtocolErrors: o.nativeProtoErrs.Load(),
		Fallbacks:      o.nativeFallbacks.Load(),
		FramesSent:     o.nativeFramesOut.Load(),
		FramesReceived: o.nativeFramesIn.Load(),
	}
}

// merge folds t into n.
func (n *NativeStats) merge(t *NativeStats) {
	n.Builds += t.Builds
	n.BuildNanos += t.BuildNanos
	n.Respawns += t.Respawns
	n.ProtocolErrors += t.ProtocolErrors
	n.Fallbacks += t.Fallbacks
	n.FramesSent += t.FramesSent
	n.FramesReceived += t.FramesReceived
}
