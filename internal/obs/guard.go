package obs

import "udsim/internal/resilience"

// Guard counters: the observability face of the resilience layer. The
// guarded engine (facade WithGuard) records every fault, retry,
// quarantine, sequential replay and oracle cross-check here, and
// WriteText exports them as udsim_guard_* families so a scraper can
// alert on degradation the same way it scrapes throughput.
//
// All Add* methods follow the package contract: atomic, allocation-free,
// safe for concurrent use, and a nil *Observer check at the caller is
// the entire disabled cost. The counters deliberately survive Attach
// (see the field comment in obs.go): Attach marks an observation epoch
// for performance counters, but fault history must span the engine
// reconfiguration that a quarantine performs.

// AddGuardFault counts one typed engine fault by kind.
func (o *Observer) AddGuardFault(kind resilience.FaultKind) {
	if int(kind) >= 0 && int(kind) < len(o.guardFaults) {
		o.guardFaults[kind].Add(1)
	}
}

// AddGuardRetry counts one sequential-replay retry of a transient fault.
func (o *Observer) AddGuardRetry() { o.guardRetries.Add(1) }

// AddGuardQuarantine counts one execution-strategy quarantine (the
// engine reverted to sequential execution after a fault).
func (o *Observer) AddGuardQuarantine() { o.guardQuarantines.Add(1) }

// AddGuardReplays counts n vectors replayed on the sequential path after
// a fault rolled their batch back.
func (o *Observer) AddGuardReplays(n int64) { o.guardReplays.Add(n) }

// AddGuardCrossCheck counts one primary-output comparison against the
// zero-delay reference oracle.
func (o *Observer) AddGuardCrossCheck() { o.guardChecks.Add(1) }

// AddGuardMismatch counts one cross-check that caught corrupted outputs.
func (o *Observer) AddGuardMismatch() { o.guardMismatches.Add(1) }

// GuardStats is the guard-counter section of a Snapshot.
type GuardStats struct {
	// Panics, Deadlines, Cancels, Corruptions, Subprocesses and
	// Protocols count faults by kind.
	Panics       int64 `json:"panics"`
	Deadlines    int64 `json:"deadlines"`
	Cancels      int64 `json:"cancels"`
	Corruptions  int64 `json:"corruptions"`
	Subprocesses int64 `json:"subprocesses"`
	Protocols    int64 `json:"protocols"`
	// Retries counts transient-fault replay retries, Quarantines the
	// strategy fallbacks, ReplayedVectors the vectors re-run sequentially.
	Retries         int64 `json:"retries"`
	Quarantines     int64 `json:"quarantines"`
	ReplayedVectors int64 `json:"replayed_vectors"`
	// CrossChecks counts oracle comparisons; Mismatches the failures.
	CrossChecks int64 `json:"cross_checks"`
	Mismatches  int64 `json:"mismatches"`
}

// Faults sums the per-kind fault counts.
func (g *GuardStats) Faults() int64 {
	return g.Panics + g.Deadlines + g.Cancels + g.Corruptions + g.Subprocesses + g.Protocols
}

// guardStats reads the guard counters into a coherent GuardStats.
func (o *Observer) guardStats() GuardStats {
	return GuardStats{
		Panics:          o.guardFaults[resilience.FaultPanic].Load(),
		Deadlines:       o.guardFaults[resilience.FaultDeadline].Load(),
		Cancels:         o.guardFaults[resilience.FaultCanceled].Load(),
		Corruptions:     o.guardFaults[resilience.FaultCorruption].Load(),
		Subprocesses:    o.guardFaults[resilience.FaultSubprocess].Load(),
		Protocols:       o.guardFaults[resilience.FaultProtocol].Load(),
		Retries:         o.guardRetries.Load(),
		Quarantines:     o.guardQuarantines.Load(),
		ReplayedVectors: o.guardReplays.Load(),
		CrossChecks:     o.guardChecks.Load(),
		Mismatches:      o.guardMismatches.Load(),
	}
}

// merge folds t into g.
func (g *GuardStats) merge(t *GuardStats) {
	g.Panics += t.Panics
	g.Deadlines += t.Deadlines
	g.Cancels += t.Cancels
	g.Corruptions += t.Corruptions
	g.Subprocesses += t.Subprocesses
	g.Protocols += t.Protocols
	g.Retries += t.Retries
	g.Quarantines += t.Quarantines
	g.ReplayedVectors += t.ReplayedVectors
	g.CrossChecks += t.CrossChecks
	g.Mismatches += t.Mismatches
}
