package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterMath pins the arithmetic of Snapshot against hand-fed
// counter updates on a known shape.
func TestCounterMath(t *testing.T) {
	o := New(Config{Activity: true})
	o.Attach(Shape{
		Engine: "parallel", Levels: 2, Workers: 2, Steps: 4, Nets: 3,
		SimInstrs: 10, InitInstrs: 4,
		SimWords: 25, InitWords: 8, SimScratch: 6,
	})
	o.AddVectors(3)
	o.AddInit(2 * time.Microsecond)
	o.AddInit(2 * time.Microsecond)
	o.AddRun(10 * time.Microsecond)
	o.AddRun(10 * time.Microsecond)
	// level 0: balanced; level 1: worker 0 does triple the work.
	o.AddLevel(0, 0, 4*time.Microsecond, 6)
	o.AddLevel(0, 1, 4*time.Microsecond, 6)
	o.AddLevel(1, 0, 3*time.Microsecond, 5)
	o.AddLevel(1, 1, 1*time.Microsecond, 3)
	o.AddWait(0, 1*time.Microsecond)
	o.AddWait(1, 3*time.Microsecond)
	o.AddTransition(1)
	o.AddTransition(1)
	o.AddTransition(3)
	o.AddNetToggles(0, 1)
	o.AddNetToggles(2, 3) // 2 glitch transitions
	o.AddActivityVector()

	s := o.Snapshot()
	if s.Engine != "parallel" || s.Levels != 2 || s.Workers != 2 {
		t.Fatalf("shape mangled: %+v", s)
	}
	if s.Vectors != 3 || s.Runs != 2 || s.InitRuns != 2 {
		t.Fatalf("counts: vectors=%d runs=%d initRuns=%d", s.Vectors, s.Runs, s.InitRuns)
	}
	if s.RunNanos != 20000 || s.InitNanos != 4000 {
		t.Fatalf("nanos: run=%d init=%d", s.RunNanos, s.InitNanos)
	}
	if s.Instrs != 20 || s.InitInstrs != 8 {
		t.Fatalf("instrs: sim=%d init=%d", s.Instrs, s.InitInstrs)
	}
	if s.Words != 2*25+2*8 || s.Scratch != 2*6 {
		t.Fatalf("traffic: words=%d scratch=%d", s.Words, s.Scratch)
	}
	if got := s.Level[0].Utilization(); got != 1.0 {
		t.Fatalf("level 0 utilization %v, want 1.0", got)
	}
	// Level 1: mean 2µs, max 3µs → 2/3.
	if got := s.Level[1].Utilization(); got < 0.66 || got > 0.67 {
		t.Fatalf("level 1 utilization %v, want 2/3", got)
	}
	if s.Level[1].Instrs() != 8 || s.Level[1].Nanos() != 4000 {
		t.Fatalf("level 1 totals: %d instrs %d ns", s.Level[1].Instrs(), s.Level[1].Nanos())
	}
	if s.Worker[0].BusyNanos != 7000 || s.Worker[0].WaitNanos != 1000 || s.Worker[0].Instrs != 11 {
		t.Fatalf("worker 0: %+v", s.Worker[0])
	}
	if s.BusyNanos() != 12000 || s.BarrierWaitNanos() != 4000 {
		t.Fatalf("totals: busy=%d wait=%d", s.BusyNanos(), s.BarrierWaitNanos())
	}
	// Weighted mean utilization: (8000·1.0 + 4000·(2/3)) / 12000 = 8/9.
	if got, want := s.MeanUtilization(), 8.0/9.0; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("mean utilization %v, want %v", got, want)
	}
	if s.Steps[1] != 2 || s.Steps[3] != 1 || s.Steps[0] != 0 {
		t.Fatalf("steps: %v", s.Steps)
	}
	if s.TotalToggles() != 4 || s.TotalGlitches() != 2 {
		t.Fatalf("activity totals: %d toggles %d glitches", s.TotalToggles(), s.TotalGlitches())
	}
	if s.ActivityVectors != 1 {
		t.Fatalf("activity vectors %d", s.ActivityVectors)
	}
	if s.WallNanos <= 0 || s.VectorsPerSec() <= 0 {
		t.Fatalf("wall window: %d ns, %v vec/s", s.WallNanos, s.VectorsPerSec())
	}
}

// TestConcurrentMerging hammers one observer from concurrent workers —
// the shard-engine usage pattern — and checks the snapshot totals are
// exact. Run under -race this also proves the Add* paths and a
// concurrent Snapshot are data-race free.
func TestConcurrentMerging(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const levels, rounds = 5, 200
			o := New(Config{Activity: true})
			o.Attach(Shape{Engine: "test", Levels: levels, Workers: workers, Steps: 8, Nets: 4})
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						for l := 0; l < levels; l++ {
							o.AddLevel(l, w, time.Nanosecond*7, 3)
						}
						o.AddWait(w, time.Nanosecond*2)
						o.AddTransition(r % 8)
						o.AddNetToggles(r%4, 2)
					}
				}(w)
			}
			done := make(chan struct{})
			go func() { // concurrent reader: must be race-free, values monotone
				defer close(done)
				for i := 0; i < 50; i++ {
					s := o.Snapshot()
					if s.Instrs < 0 {
						t.Error("negative instruction count")
						return
					}
				}
			}()
			wg.Wait()
			<-done
			s := o.Snapshot()
			wantInstrs := int64(workers * rounds * levels * 3)
			if s.Instrs != wantInstrs {
				t.Fatalf("instrs %d, want %d", s.Instrs, wantInstrs)
			}
			if got := s.BusyNanos(); got != int64(workers*rounds*levels*7) {
				t.Fatalf("busy %d", got)
			}
			if got := s.BarrierWaitNanos(); got != int64(workers*rounds*2) {
				t.Fatalf("wait %d", got)
			}
			var steps int64
			for _, v := range s.Steps {
				steps += v
			}
			if steps != int64(workers*rounds) {
				t.Fatalf("transitions %d, want %d", steps, workers*rounds)
			}
			if s.TotalToggles() != int64(workers*rounds*2) {
				t.Fatalf("toggles %d", s.TotalToggles())
			}
			for w := 0; w < workers; w++ {
				if s.Worker[w].Instrs != int64(rounds*levels*3) {
					t.Fatalf("worker %d instrs %d", w, s.Worker[w].Instrs)
				}
			}
		})
	}
}

// TestSnapshotMerge checks Merge sums two windows and rejects shape
// mismatches.
func TestSnapshotMerge(t *testing.T) {
	mk := func(runs int64) *Snapshot {
		o := New(Config{})
		o.Attach(Shape{Engine: "parallel", Levels: 2, Workers: 2, SimInstrs: 5, SimWords: 9, SimScratch: 2})
		for i := int64(0); i < runs; i++ {
			o.AddVectors(1)
			o.AddRun(time.Microsecond)
			o.AddLevel(0, 0, time.Microsecond/2, 3)
			o.AddLevel(1, 1, time.Microsecond/2, 2)
			o.AddWait(1, time.Microsecond/4)
		}
		return o.Snapshot()
	}
	a, b := mk(3), mk(5)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Vectors != 8 || a.Runs != 8 || a.Instrs != 8*5 || a.Words != 8*9 || a.Scratch != 8*2 {
		t.Fatalf("merged totals: %+v", a)
	}
	if a.Level[0].ShardInstrs[0] != 8*3 || a.Worker[1].WaitNanos != 8*250 {
		t.Fatalf("merged grid: %+v %+v", a.Level, a.Worker)
	}
	other := &Snapshot{Engine: "pcset", Levels: 2, Workers: 2}
	if err := a.Merge(other); err == nil {
		t.Fatal("merged snapshots of different engines")
	}
}

// TestTextExport round-trips WriteText through ValidateText and pins a
// few sample lines; ValidateText must reject malformed exports.
func TestTextExport(t *testing.T) {
	o := New(Config{Activity: true})
	o.Attach(Shape{Engine: "parallel+trim", Levels: 2, Workers: 2, Steps: 3, Nets: 2, SimInstrs: 4})
	o.AddVectors(2)
	o.AddRun(time.Microsecond)
	o.AddLevel(0, 0, time.Microsecond, 4)
	o.AddTransition(1)
	o.AddNetToggles(0, 1)

	var buf bytes.Buffer
	if err := o.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`udsim_vectors_total{engine="parallel+trim"} 2`,
		`udsim_level_instrs_total{engine="parallel+trim",level="0",shard="0"} 4`,
		`udsim_activity_transitions_total{engine="parallel+trim",step="1"} 1`,
		"# TYPE udsim_worker_busy_seconds_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q\n%s", want, out)
		}
	}
	if err := ValidateText(strings.NewReader(out)); err != nil {
		t.Fatalf("valid export rejected: %v", err)
	}
	for name, bad := range map[string]string{
		"empty":        "",
		"comment only": "# TYPE x counter\n",
		"bare name":    "udsim_vectors_total 3\n", // WriteText always labels
		"garbage":      "ns/op 123 zzz\n",
		"bad value":    `udsim_vectors_total{engine="x"} notanumber` + "\n",
	} {
		if err := ValidateText(strings.NewReader(bad)); err == nil {
			t.Errorf("%s: malformed export accepted", name)
		}
	}
}

// TestNilAndDetached pins the disabled-path contract: a nil observer
// reports activity disabled, and an unattached observer snapshots to
// zeros without panicking.
func TestNilAndDetached(t *testing.T) {
	var o *Observer
	if o.ActivityEnabled() {
		t.Fatal("nil observer claims activity")
	}
	s := New(Config{}).Snapshot()
	if s.Vectors != 0 || len(s.Level) != 0 || s.WallNanos != 0 {
		t.Fatalf("detached snapshot not empty: %+v", s)
	}
}

// TestExpvar checks the expvar adapter renders JSON.
func TestExpvar(t *testing.T) {
	o := New(Config{})
	o.Attach(Shape{Engine: "parallel", Levels: 1, Workers: 1})
	o.AddVectors(7)
	js := o.Expvar().String()
	if !strings.Contains(js, `"vectors": 7`) && !strings.Contains(js, `"vectors":7`) {
		t.Fatalf("expvar JSON missing vectors: %s", js)
	}
}
