// Package obs is the runtime observability layer shared by every
// simulation engine in this repository.
//
// The paper argues for compiled unit-delay simulation by measuring —
// instruction counts, word counts, shift counts, activity per circuit —
// and this package extends that discipline to the runtime: where the
// cycles go (per level, per shard), how balanced the sharded execution
// is (busy versus barrier-wait time per worker), how much state traffic
// a vector stream generates, and how much unit-delay switching activity
// the circuit exhibits per time step.
//
// The design constraints, in order:
//
//  1. Disabled is free. Engines hold a *Observer that is nil by default;
//     every hot-path hook is guarded by one nil check.
//  2. Enabled is sampling-free and allocation-free in steady state. All
//     counters are plain atomic adds into arrays sized once at Attach;
//     wall-clock time comes from time.Now() (no timer goroutines, no
//     channels); nothing in the Add* family allocates, so engines keep
//     their 0 allocs/op ApplyStream guarantee with an observer on.
//  3. Reading is cheap but not free. Snapshot() allocates a coherent
//     copy; it is meant for the end (or quiet moments) of a run.
//
// Layout: the per-(level, worker) cell grid is worker-major, so each
// worker's cells are contiguous and two workers only ever share the one
// cache line at their block boundary; the per-worker busy/wait counters
// are padded to a cache line each.
package obs

import (
	"expvar"
	"sync/atomic"
	"time"

	"udsim/internal/resilience"
)

// Config selects the optional collections of an Observer. The zero value
// collects timing and traffic counters only.
type Config struct {
	// Activity enables unit-delay activity profiling: nets changing per
	// time step and per-net toggle/glitch counts. The engine scans every
	// net's waveform after each vector, so it costs O(nets × depth) per
	// vector — cheap next to simulation, but not free like the counters.
	Activity bool
}

// Shape describes the engine attaching to an Observer: the static
// quantities the counters are normalized against. Engines fill it in
// SetObserver; Attach sizes the counter arrays from it and resets every
// counter.
type Shape struct {
	// Engine is the attaching engine's name (e.g. "parallel", "pcset").
	Engine string
	// Levels is the number of bulk-synchronous levels the simulation
	// program executes in (1 for sequential execution: the whole program
	// is one level).
	Levels int
	// Workers is the number of shards per level (1 for sequential).
	Workers int
	// Steps is the number of unit-delay time steps per vector
	// (circuit depth + 1); used only when Config.Activity is set.
	Steps int
	// Nets is the number of circuit nets; used only for activity.
	Nets int
	// SimInstrs and InitInstrs are the instruction counts of the
	// simulation and per-vector initialization programs.
	SimInstrs, InitInstrs int
	// SimWords and InitWords are the state-array words touched by one
	// execution of the respective program (destination plus read slots
	// per instruction); SimScratch is the subset of the simulation
	// program's operand references that hit the scratch region. All
	// three are static program properties, so per-run traffic is
	// accumulated by adding these constants — no per-instruction
	// metering in the hot loop.
	SimWords, InitWords, SimScratch int64
	// FusedLevels is the number of merged levels that absorbed at least
	// one neighbor during level fusion, and BarriersDeleted how many
	// barrier crossings per run the fusion removed. Static plan
	// properties (zero without level fusion).
	FusedLevels, BarriersDeleted int
}

// cell accumulates one (level, worker) pair's execution time and
// instruction count.
type cell struct {
	nanos  atomic.Int64
	instrs atomic.Int64
}

// workerCtr accumulates one worker's busy and barrier-wait time, padded
// so adjacent workers never share a cache line.
type workerCtr struct {
	busy atomic.Int64 // nanoseconds executing level slices
	wait atomic.Int64 // nanoseconds in barrier waits
	_    [48]byte
}

// Observer collects runtime counters for one engine. All Add* methods
// are safe for concurrent use (shard workers, vector-batch clones) and
// never allocate; Attach and Snapshot are not safe to call concurrently
// with a running simulation.
//
// A nil *Observer is the disabled state: engines must guard their hooks
// with a nil check, which is the entire disabled-path overhead.
type Observer struct {
	cfg   Config
	shape Shape
	start time.Time

	vectors   atomic.Int64
	runs      atomic.Int64 // simulation-program executions
	runNanos  atomic.Int64 // wall time inside those executions
	initRuns  atomic.Int64 // initialization-program executions
	initNanos atomic.Int64

	cells   []cell // worker-major: cells[w*shape.Levels + l]
	workers []workerCtr

	// Activity gating (the ActivityGated strategy): shard slices skipped
	// because their input cone was untouched, and the bookkeeping time
	// the gating decision itself cost.
	shardsSkipped atomic.Int64
	gatingNanos   atomic.Int64

	// Activity (nil unless Config.Activity): transitions per time step,
	// and per-net toggle/glitch totals across observed vectors.
	steps       []atomic.Int64
	netToggles  []atomic.Int64
	netGlitches []atomic.Int64
	actVectors  atomic.Int64

	// Guard counters (see guard.go): resilience events recorded by the
	// guarded engine. Unlike every other counter these survive Attach —
	// quarantining an execution strategy reconfigures the engine, and the
	// fault record must outlive the reconfiguration it caused.
	guardFaults      [resilience.NumFaultKinds]atomic.Int64
	guardRetries     atomic.Int64
	guardQuarantines atomic.Int64
	guardReplays     atomic.Int64
	guardChecks      atomic.Int64
	guardMismatches  atomic.Int64

	// Native-backend counters (see native.go): child builds, respawns,
	// protocol errors, in-process fallbacks and frame traffic recorded by
	// the subprocess supervisor. Like the guard counters they survive
	// Attach — a respawn or quarantine reconfigures the engine, and the
	// record must outlive the reconfiguration it caused.
	nativeBuilds     atomic.Int64
	nativeBuildNanos atomic.Int64
	nativeRespawns   atomic.Int64
	nativeProtoErrs  atomic.Int64
	nativeFallbacks  atomic.Int64
	nativeFramesOut  atomic.Int64
	nativeFramesIn   atomic.Int64
}

// New creates a detached Observer. It collects nothing until an engine
// attaches it (see the facade's WithObserver option).
func New(cfg Config) *Observer { return &Observer{cfg: cfg} }

// Config returns the observer's configuration.
func (o *Observer) Config() Config { return o.cfg }

// ActivityEnabled reports whether the attaching engine should run its
// per-vector activity scan. Safe on a nil receiver.
func (o *Observer) ActivityEnabled() bool { return o != nil && o.cfg.Activity }

// Shape returns the shape of the last Attach.
func (o *Observer) Shape() Shape { return o.shape }

// Attach (re)sizes the counter arrays for an engine's shape and resets
// every counter — attaching is the observation epoch boundary. Engines
// call it from SetObserver and again when reconfiguring execution
// (ConfigureExec changes Levels/Workers). Must not race a running
// simulation.
func (o *Observer) Attach(s Shape) {
	if s.Levels < 1 {
		s.Levels = 1
	}
	if s.Workers < 1 {
		s.Workers = 1
	}
	o.shape = s
	o.cells = make([]cell, s.Levels*s.Workers)
	o.workers = make([]workerCtr, s.Workers)
	o.steps, o.netToggles, o.netGlitches = nil, nil, nil
	if o.cfg.Activity {
		o.steps = make([]atomic.Int64, s.Steps)
		o.netToggles = make([]atomic.Int64, s.Nets)
		o.netGlitches = make([]atomic.Int64, s.Nets)
	}
	o.vectors.Store(0)
	o.runs.Store(0)
	o.runNanos.Store(0)
	o.initRuns.Store(0)
	o.initNanos.Store(0)
	o.actVectors.Store(0)
	o.shardsSkipped.Store(0)
	o.gatingNanos.Store(0)
	o.start = time.Now()
}

// AddVectors counts n applied input vectors (64 for a packed-lane apply).
func (o *Observer) AddVectors(n int64) { o.vectors.Add(n) }

// AddRun counts one execution of the simulation program taking d of wall
// time; the static word/scratch traffic of the shape is implied.
func (o *Observer) AddRun(d time.Duration) {
	o.runs.Add(1)
	o.runNanos.Add(int64(d))
}

// AddInit counts one execution of the initialization program.
func (o *Observer) AddInit(d time.Duration) {
	o.initRuns.Add(1)
	o.initNanos.Add(int64(d))
}

// AddLevel records worker executing its slice of a level: d of busy time
// over instrs instructions. Bounds are the attaching engine's contract.
func (o *Observer) AddLevel(level, worker int, d time.Duration, instrs int) {
	c := &o.cells[worker*o.shape.Levels+level]
	c.nanos.Add(int64(d))
	c.instrs.Add(int64(instrs))
	o.workers[worker].busy.Add(int64(d))
}

// AddWait records worker spending d in a barrier wait.
func (o *Observer) AddWait(worker int, d time.Duration) {
	o.workers[worker].wait.Add(int64(d))
}

// AddShardsSkipped counts n shard level-slices skipped by activity
// gating in one run.
func (o *Observer) AddShardsSkipped(n int64) { o.shardsSkipped.Add(n) }

// AddGatingNanos records the bookkeeping cost of one gating decision:
// diffing the primary inputs and deriving the skip sets.
func (o *Observer) AddGatingNanos(d time.Duration) { o.gatingNanos.Add(int64(d)) }

// AddTransition counts one net changing value at time step t.
func (o *Observer) AddTransition(t int) { o.steps[t].Add(1) }

// AddNetToggles folds one vector's transition count for a net into the
// per-net totals: toggles beyond the first are glitch transitions.
func (o *Observer) AddNetToggles(net int, toggles int64) {
	o.netToggles[net].Add(toggles)
	if toggles > 1 {
		o.netGlitches[net].Add(toggles - 1)
	}
}

// AddActivityVector counts one vector whose activity was scanned.
func (o *Observer) AddActivityVector() { o.actVectors.Add(1) }

// Expvar adapts the observer to the expvar interface: the returned Var
// renders a fresh Snapshot as JSON on every read, so
// expvar.Publish("udsim", o.Expvar()) exposes live counters over the
// standard /debug/vars endpoint.
func (o *Observer) Expvar() expvar.Var {
	return expvar.Func(func() any { return o.Snapshot() })
}
