package obs

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// WriteText renders the snapshot in the Prometheus text exposition
// format (one `name{labels} value` sample per line, `# TYPE` comments
// per family). The export carries the stream-level counters, the
// per-worker busy/wait split, the per-(level, shard) grid and the
// activity-per-step profile — everything a scraper or a diff needs,
// except the per-net activity vectors, which stay in the Snapshot
// (they are circuit-sized and belong in internal/activity reports).
func (s *Snapshot) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	eng := s.Engine
	if eng == "" {
		eng = "unknown"
	}
	sample := func(name, labels string, v float64) {
		if labels == "" {
			fmt.Fprintf(bw, "%s{engine=%q} %s\n", name, eng, formatValue(v))
		} else {
			fmt.Fprintf(bw, "%s{engine=%q,%s} %s\n", name, eng, labels, formatValue(v))
		}
	}
	family := func(name, typ string) { fmt.Fprintf(bw, "# TYPE %s %s\n", name, typ) }
	secs := func(ns int64) float64 { return float64(ns) / 1e9 }

	family("udsim_vectors_total", "counter")
	sample("udsim_vectors_total", "", float64(s.Vectors))
	family("udsim_runs_total", "counter")
	sample("udsim_runs_total", "", float64(s.Runs))
	family("udsim_run_seconds_total", "counter")
	sample("udsim_run_seconds_total", "", secs(s.RunNanos))
	family("udsim_init_runs_total", "counter")
	sample("udsim_init_runs_total", "", float64(s.InitRuns))
	family("udsim_init_seconds_total", "counter")
	sample("udsim_init_seconds_total", "", secs(s.InitNanos))
	family("udsim_instrs_total", "counter")
	sample("udsim_instrs_total", "", float64(s.Instrs))
	family("udsim_init_instrs_total", "counter")
	sample("udsim_init_instrs_total", "", float64(s.InitInstrs))
	family("udsim_state_words_total", "counter")
	sample("udsim_state_words_total", "", float64(s.Words))
	family("udsim_scratch_refs_total", "counter")
	sample("udsim_scratch_refs_total", "", float64(s.Scratch))
	family("udsim_fused_levels", "gauge")
	sample("udsim_fused_levels", "", float64(s.FusedLevels))
	family("udsim_barriers_deleted", "gauge")
	sample("udsim_barriers_deleted", "", float64(s.BarriersDeleted))
	family("udsim_shards_skipped_total", "counter")
	sample("udsim_shards_skipped_total", "", float64(s.ShardsSkipped))
	family("udsim_gating_overhead_seconds_total", "counter")
	sample("udsim_gating_overhead_seconds_total", "", secs(s.GatingNanos))
	family("udsim_wall_seconds", "gauge")
	sample("udsim_wall_seconds", "", secs(s.WallNanos))
	family("udsim_vectors_per_second", "gauge")
	sample("udsim_vectors_per_second", "", s.VectorsPerSec())
	family("udsim_utilization", "gauge")
	sample("udsim_utilization", "", s.MeanUtilization())

	if len(s.Worker) > 0 {
		family("udsim_worker_busy_seconds_total", "counter")
		family("udsim_worker_wait_seconds_total", "counter")
		family("udsim_worker_instrs_total", "counter")
		for w := range s.Worker {
			l := fmt.Sprintf("worker=%q", strconv.Itoa(w))
			sample("udsim_worker_busy_seconds_total", l, secs(s.Worker[w].BusyNanos))
			sample("udsim_worker_wait_seconds_total", l, secs(s.Worker[w].WaitNanos))
			sample("udsim_worker_instrs_total", l, float64(s.Worker[w].Instrs))
		}
	}
	if len(s.Level) > 0 {
		family("udsim_level_seconds_total", "counter")
		family("udsim_level_instrs_total", "counter")
		family("udsim_level_utilization", "gauge")
		for l := range s.Level {
			for w := range s.Level[l].ShardNanos {
				lb := fmt.Sprintf("level=%q,shard=%q", strconv.Itoa(l), strconv.Itoa(w))
				sample("udsim_level_seconds_total", lb, secs(s.Level[l].ShardNanos[w]))
				sample("udsim_level_instrs_total", lb, float64(s.Level[l].ShardInstrs[w]))
			}
			sample("udsim_level_utilization", fmt.Sprintf("level=%q", strconv.Itoa(l)), s.Level[l].Utilization())
		}
	}
	family("udsim_guard_faults_total", "counter")
	sample("udsim_guard_faults_total", `kind="panic"`, float64(s.Guard.Panics))
	sample("udsim_guard_faults_total", `kind="deadline"`, float64(s.Guard.Deadlines))
	sample("udsim_guard_faults_total", `kind="canceled"`, float64(s.Guard.Cancels))
	sample("udsim_guard_faults_total", `kind="corruption"`, float64(s.Guard.Corruptions))
	sample("udsim_guard_faults_total", `kind="subprocess"`, float64(s.Guard.Subprocesses))
	sample("udsim_guard_faults_total", `kind="protocol"`, float64(s.Guard.Protocols))
	family("udsim_guard_retries_total", "counter")
	sample("udsim_guard_retries_total", "", float64(s.Guard.Retries))
	family("udsim_guard_quarantines_total", "counter")
	sample("udsim_guard_quarantines_total", "", float64(s.Guard.Quarantines))
	family("udsim_guard_replayed_vectors_total", "counter")
	sample("udsim_guard_replayed_vectors_total", "", float64(s.Guard.ReplayedVectors))
	family("udsim_guard_crosschecks_total", "counter")
	sample("udsim_guard_crosschecks_total", "", float64(s.Guard.CrossChecks))
	family("udsim_guard_crosscheck_mismatches_total", "counter")
	sample("udsim_guard_crosscheck_mismatches_total", "", float64(s.Guard.Mismatches))

	// Native-backend supervisor counters.
	family("udsim_native_builds_total", "counter")
	sample("udsim_native_builds_total", "", float64(s.Native.Builds))
	family("udsim_native_build_seconds_total", "counter")
	sample("udsim_native_build_seconds_total", "", float64(s.Native.BuildNanos)/1e9)
	family("udsim_native_respawns_total", "counter")
	sample("udsim_native_respawns_total", "", float64(s.Native.Respawns))
	family("udsim_native_protocol_errors_total", "counter")
	sample("udsim_native_protocol_errors_total", "", float64(s.Native.ProtocolErrors))
	family("udsim_native_fallbacks_total", "counter")
	sample("udsim_native_fallbacks_total", "", float64(s.Native.Fallbacks))
	family("udsim_native_frames_total", "counter")
	sample("udsim_native_frames_total", `dir="sent"`, float64(s.Native.FramesSent))
	sample("udsim_native_frames_total", `dir="received"`, float64(s.Native.FramesReceived))

	if s.Steps != nil {
		family("udsim_activity_vectors_total", "counter")
		sample("udsim_activity_vectors_total", "", float64(s.ActivityVectors))
		family("udsim_activity_toggles_total", "counter")
		sample("udsim_activity_toggles_total", "", float64(s.TotalToggles()))
		family("udsim_activity_glitches_total", "counter")
		sample("udsim_activity_glitches_total", "", float64(s.TotalGlitches()))
		family("udsim_activity_transitions_total", "counter")
		for t := range s.Steps {
			sample("udsim_activity_transitions_total",
				fmt.Sprintf("step=%q", strconv.Itoa(t)), float64(s.Steps[t]))
		}
	}
	return bw.Flush()
}

// formatValue renders a sample value the way Prometheus clients do:
// shortest float representation, integral values without an exponent.
func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// sampleLine matches one exposition-format sample:
// name{label="value",...} number — the subset WriteText emits (every
// sample here carries at least the engine label).
var sampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\} (\S+)$`)

// ValidateText checks that r is a well-formed metrics export: every
// non-blank line is either a comment or a sample whose value parses as
// a finite float, and at least one sample is present. CI runs the
// udbench -profile export through it so a malformed export fails the
// build.
func ValidateText(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo, samples := 0, 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("obs: export line %d is not a metric sample: %q", lineNo, line)
		}
		v, err := strconv.ParseFloat(m[len(m)-1], 64)
		if err != nil {
			return fmt.Errorf("obs: export line %d has unparseable value: %q", lineNo, line)
		}
		if v != v || v < -1e300 || v > 1e300 { // NaN or absurd magnitude
			return fmt.Errorf("obs: export line %d has non-finite value: %q", lineNo, line)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("obs: reading export: %w", err)
	}
	if samples == 0 {
		return fmt.Errorf("obs: export contains no metric samples")
	}
	return nil
}
