package obs

import (
	"fmt"
	"time"
)

// LevelStat is one bulk-synchronous level's per-shard execution profile.
type LevelStat struct {
	// ShardNanos[w] is worker w's accumulated busy time in this level.
	ShardNanos []int64 `json:"shard_nanos"`
	// ShardInstrs[w] is the instructions worker w executed in this level.
	ShardInstrs []int64 `json:"shard_instrs"`
}

// Nanos is the level's total busy time across shards.
func (l *LevelStat) Nanos() int64 {
	var t int64
	for _, v := range l.ShardNanos {
		t += v
	}
	return t
}

// Instrs is the level's total instruction count across shards.
func (l *LevelStat) Instrs() int64 {
	var t int64
	for _, v := range l.ShardInstrs {
		t += v
	}
	return t
}

// Utilization is the level's shard balance: mean busy time over maximum
// busy time, 1.0 when perfectly balanced. A level whose slowest shard
// takes max while the average shard takes mean keeps the workers
// mean/max busy — the rest is barrier wait. Levels with no measured
// time report 1.0 (trivially balanced).
func (l *LevelStat) Utilization() float64 {
	var sum, max int64
	for _, v := range l.ShardNanos {
		sum += v
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return 1
	}
	return float64(sum) / float64(len(l.ShardNanos)) / float64(max)
}

// WorkerStat is one worker's stream-level execution profile.
type WorkerStat struct {
	// BusyNanos is time spent executing level slices.
	BusyNanos int64 `json:"busy_nanos"`
	// WaitNanos is time spent in barrier waits.
	WaitNanos int64 `json:"wait_nanos"`
	// Instrs is the total instructions the worker executed.
	Instrs int64 `json:"instrs"`
}

// Snapshot is a coherent copy of an Observer's counters. It is plain
// data: safe to retain, merge, serialize or diff after the observer
// moves on.
type Snapshot struct {
	Engine  string `json:"engine"`
	Config  Config `json:"config"`
	Levels  int    `json:"levels"`
	Workers int    `json:"workers"`

	// WallNanos is the wall time between Attach and Snapshot — the
	// denominator of the stream-level rates.
	WallNanos int64 `json:"wall_nanos"`

	Vectors   int64 `json:"vectors"`
	Runs      int64 `json:"runs"`
	RunNanos  int64 `json:"run_nanos"`
	InitRuns  int64 `json:"init_runs"`
	InitNanos int64 `json:"init_nanos"`

	// Instrs is the number of simulation-program instructions executed
	// (summed from the level cells); InitInstrs counts initialization
	// instructions (derived: runs × program size).
	Instrs     int64 `json:"instrs"`
	InitInstrs int64 `json:"init_instrs"`

	// Words is the state-array words touched and Scratch the scratch-
	// region operand references, both derived from the programs' static
	// traffic × run counts.
	Words   int64 `json:"words"`
	Scratch int64 `json:"scratch"`

	// Level fusion and activity gating: FusedLevels and BarriersDeleted
	// are static plan properties copied from the shape; ShardsSkipped
	// counts shard level-slices elided because their input cone was
	// untouched, and GatingNanos the bookkeeping time the gating
	// decisions cost.
	FusedLevels     int   `json:"fused_levels"`
	BarriersDeleted int   `json:"barriers_deleted"`
	ShardsSkipped   int64 `json:"shards_skipped"`
	GatingNanos     int64 `json:"gating_overhead_ns"`

	Level  []LevelStat  `json:"level"`
	Worker []WorkerStat `json:"worker"`

	// Activity profile (nil unless Config.Activity): Steps[t] is the
	// number of net value changes observed at time step t across
	// ActivityVectors scanned vectors; NetToggles/NetGlitches are the
	// per-net totals (glitches = transitions beyond the first per
	// vector), bridging to internal/activity's Report.
	Steps           []int64 `json:"steps,omitempty"`
	NetToggles      []int64 `json:"net_toggles,omitempty"`
	NetGlitches     []int64 `json:"net_glitches,omitempty"`
	ActivityVectors int64   `json:"activity_vectors"`

	// Guard is the resilience-event section (see guard.go); all zeros
	// unless the engine runs guarded.
	Guard GuardStats `json:"guard"`

	// Native is the subprocess-supervisor section (see native.go); all
	// zeros unless the engine runs the native backend.
	Native NativeStats `json:"native"`
}

// Snapshot copies the counters into a coherent read-only view. It
// allocates (it is not part of the steady state) and may be called
// concurrently with Add* hooks — each counter is read atomically, so a
// snapshot taken mid-run is a consistent set of monotone lower bounds.
func (o *Observer) Snapshot() *Snapshot {
	s := &Snapshot{
		Engine:    o.shape.Engine,
		Config:    o.cfg,
		Levels:    o.shape.Levels,
		Workers:   o.shape.Workers,
		Vectors:   o.vectors.Load(),
		Runs:      o.runs.Load(),
		RunNanos:  o.runNanos.Load(),
		InitRuns:  o.initRuns.Load(),
		InitNanos: o.initNanos.Load(),
		Guard:     o.guardStats(),
		Native:    o.nativeStats(),

		FusedLevels:     o.shape.FusedLevels,
		BarriersDeleted: o.shape.BarriersDeleted,
		ShardsSkipped:   o.shardsSkipped.Load(),
		GatingNanos:     o.gatingNanos.Load(),
	}
	if !o.start.IsZero() {
		s.WallNanos = int64(time.Since(o.start))
	}
	s.InitInstrs = s.InitRuns * int64(o.shape.InitInstrs)
	s.Words = s.Runs*o.shape.SimWords + s.InitRuns*o.shape.InitWords
	s.Scratch = s.Runs * o.shape.SimScratch
	if o.cells != nil {
		s.Level = make([]LevelStat, o.shape.Levels)
		s.Worker = make([]WorkerStat, o.shape.Workers)
		for l := range s.Level {
			s.Level[l].ShardNanos = make([]int64, o.shape.Workers)
			s.Level[l].ShardInstrs = make([]int64, o.shape.Workers)
		}
		for w := 0; w < o.shape.Workers; w++ {
			for l := 0; l < o.shape.Levels; l++ {
				c := &o.cells[w*o.shape.Levels+l]
				n, i := c.nanos.Load(), c.instrs.Load()
				s.Level[l].ShardNanos[w] = n
				s.Level[l].ShardInstrs[w] = i
				s.Worker[w].Instrs += i
				s.Instrs += i
			}
			s.Worker[w].BusyNanos = o.workers[w].busy.Load()
			s.Worker[w].WaitNanos = o.workers[w].wait.Load()
		}
	}
	if o.steps != nil {
		s.Steps = make([]int64, len(o.steps))
		for t := range o.steps {
			s.Steps[t] = o.steps[t].Load()
		}
		s.NetToggles = make([]int64, len(o.netToggles))
		s.NetGlitches = make([]int64, len(o.netGlitches))
		for n := range o.netToggles {
			s.NetToggles[n] = o.netToggles[n].Load()
			s.NetGlitches[n] = o.netGlitches[n].Load()
		}
		s.ActivityVectors = o.actVectors.Load()
	}
	return s
}

// VectorsPerSec is the stream throughput over the observation window.
func (s *Snapshot) VectorsPerSec() float64 {
	if s.WallNanos <= 0 {
		return 0
	}
	return float64(s.Vectors) / (float64(s.WallNanos) / 1e9)
}

// BusyNanos sums every worker's busy time.
func (s *Snapshot) BusyNanos() int64 {
	var t int64
	for i := range s.Worker {
		t += s.Worker[i].BusyNanos
	}
	return t
}

// BarrierWaitNanos sums every worker's barrier-wait time.
func (s *Snapshot) BarrierWaitNanos() int64 {
	var t int64
	for i := range s.Worker {
		t += s.Worker[i].WaitNanos
	}
	return t
}

// MeanUtilization is the busy-time-weighted mean of the per-level shard
// utilizations — the fraction of the workers' level time that was spent
// executing rather than implied waiting. 1.0 for sequential execution.
func (s *Snapshot) MeanUtilization() float64 {
	var num, den float64
	for l := range s.Level {
		n := float64(s.Level[l].Nanos())
		num += n * s.Level[l].Utilization()
		den += n
	}
	if den == 0 {
		return 1
	}
	return num / den
}

// TotalToggles sums the per-net toggle counts of the activity profile.
func (s *Snapshot) TotalToggles() int64 {
	var t int64
	for _, v := range s.NetToggles {
		t += v
	}
	return t
}

// TotalGlitches sums the per-net glitch counts of the activity profile.
func (s *Snapshot) TotalGlitches() int64 {
	var t int64
	for _, v := range s.NetGlitches {
		t += v
	}
	return t
}

// Merge folds t's counters into s. Snapshots must come from observers
// attached with the same shape (engine, levels, workers, activity
// dimensions); wall time takes the maximum rather than the sum, since
// merged windows overlap in the vector-batch use case.
func (s *Snapshot) Merge(t *Snapshot) error {
	if s.Engine != t.Engine || s.Levels != t.Levels || s.Workers != t.Workers ||
		len(s.Steps) != len(t.Steps) || len(s.NetToggles) != len(t.NetToggles) {
		return fmt.Errorf("obs: merging snapshots of different shapes (%s %dx%d vs %s %dx%d)",
			s.Engine, s.Levels, s.Workers, t.Engine, t.Levels, t.Workers)
	}
	if t.WallNanos > s.WallNanos {
		s.WallNanos = t.WallNanos
	}
	s.Vectors += t.Vectors
	s.ShardsSkipped += t.ShardsSkipped
	s.GatingNanos += t.GatingNanos
	s.Runs += t.Runs
	s.RunNanos += t.RunNanos
	s.InitRuns += t.InitRuns
	s.InitNanos += t.InitNanos
	s.Instrs += t.Instrs
	s.InitInstrs += t.InitInstrs
	s.Words += t.Words
	s.Scratch += t.Scratch
	for l := range s.Level {
		for w := range s.Level[l].ShardNanos {
			s.Level[l].ShardNanos[w] += t.Level[l].ShardNanos[w]
			s.Level[l].ShardInstrs[w] += t.Level[l].ShardInstrs[w]
		}
	}
	for w := range s.Worker {
		s.Worker[w].BusyNanos += t.Worker[w].BusyNanos
		s.Worker[w].WaitNanos += t.Worker[w].WaitNanos
		s.Worker[w].Instrs += t.Worker[w].Instrs
	}
	for i := range s.Steps {
		s.Steps[i] += t.Steps[i]
	}
	for n := range s.NetToggles {
		s.NetToggles[n] += t.NetToggles[n]
		s.NetGlitches[n] += t.NetGlitches[n]
	}
	s.ActivityVectors += t.ActivityVectors
	s.Guard.merge(&t.Guard)
	s.Native.merge(&t.Native)
	return nil
}
