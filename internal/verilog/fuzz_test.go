package verilog

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse checks the Verilog parser never panics and that accepted
// modules survive a write/reparse round trip.
func FuzzParse(f *testing.F) {
	f.Add(c17v)
	f.Add("module m (a, y);\ninput a;\noutput y;\nnot g (y, a);\nendmodule\n")
	f.Add("module m (a);\ninput a;\nendmodule")
	f.Add("module m (a); /* x */ input a; endmodule")
	f.Add("module m (a);\ninput a;\nassign a = 1'b1;\nendmodule\n")
	f.Add("module ;\n")
	f.Add("// nothing\n")
	f.Add("module m (q, d);\ninput d;\noutput q;\ndff x (q, d);\nendmodule\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("parser accepted an invalid circuit: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			t.Fatalf("accepted circuit failed to serialize: %v", err)
		}
		// Name mangling may rename nets, so only shape is compared.
		back, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("own output failed to reparse: %v\n%s", err, buf.String())
		}
		if back.NumGates() != c.NumGates() || len(back.Inputs) != len(c.Inputs) {
			t.Fatalf("round trip changed shape: %s vs %s", c, back)
		}
	})
}
