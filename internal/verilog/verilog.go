// Package verilog reads and writes the structural gate-level Verilog
// subset that netlist benchmarks circulate in:
//
//	module c17 (N1, N2, N3, N6, N7, N22, N23);
//	  input N1, N2, N3, N6, N7;
//	  output N22, N23;
//	  wire N10, N11, N16, N19;
//	  nand g0 (N10, N1, N3);
//	  nand g1 (N11, N3, N6);
//	  ...
//	endmodule
//
// Supported constructs: one module per file; input/output/wire
// declarations; the gate primitives and, or, nand, nor, xor, xnor, not,
// buf (first terminal is the output); continuous assignments of a single
// identifier or constant (assign y = x; assign y = 1'b0;); and dff
// instances (dff d0 (Q, D);) for synchronous state. Everything else is
// rejected with a line-accurate error.
package verilog

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"udsim/internal/circuit"
	"udsim/internal/logic"
)

type token struct {
	text string
	line int
}

// lex splits the source into identifier/punctuation tokens, dropping //
// and /* */ comments.
func lex(r io.Reader) ([]token, error) {
	br := bufio.NewReader(r)
	var toks []token
	line := 1
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, token{cur.String(), line})
			cur.Reset()
		}
	}
	inLine, inBlock := false, false
	var prev rune
	for {
		ch, _, err := br.ReadRune()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if ch == '\n' {
			line++
			inLine = false
			if !inBlock {
				flush()
			}
			prev = ch
			continue
		}
		if inLine {
			prev = ch
			continue
		}
		if inBlock {
			if prev == '*' && ch == '/' {
				inBlock = false
				prev = 0
				continue
			}
			prev = ch
			continue
		}
		if prev == '/' && ch == '/' {
			// Remove the '/' that was buffered as punctuation.
			if n := len(toks); n > 0 && toks[n-1].text == "/" {
				toks = toks[:n-1]
			}
			inLine = true
			prev = ch
			continue
		}
		if prev == '/' && ch == '*' {
			if n := len(toks); n > 0 && toks[n-1].text == "/" {
				toks = toks[:n-1]
			}
			inBlock = true
			prev = ch
			continue
		}
		switch {
		case ch == ' ' || ch == '\t' || ch == '\r':
			flush()
		case ch == '(' || ch == ')' || ch == ',' || ch == ';' || ch == '=' || ch == '/':
			flush()
			toks = append(toks, token{string(ch), line})
		default:
			cur.WriteRune(ch)
		}
		prev = ch
	}
	if inBlock {
		return nil, fmt.Errorf("verilog: unterminated block comment")
	}
	flush()
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() token {
	if p.eof() {
		return token{"", -1}
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(text string) error {
	t := p.next()
	if t.text != text {
		return fmt.Errorf("verilog: line %d: expected %q, got %q", t.line, text, t.text)
	}
	return nil
}

// identList parses "a, b, c ;" returning the names.
func (p *parser) identList() ([]string, error) {
	var names []string
	for {
		t := p.next()
		if !isIdent(t.text) {
			return nil, fmt.Errorf("verilog: line %d: expected identifier, got %q", t.line, t.text)
		}
		names = append(names, t.text)
		sep := p.next()
		switch sep.text {
		case ",":
		case ";":
			return names, nil
		default:
			return nil, fmt.Errorf("verilog: line %d: expected ',' or ';', got %q", sep.line, sep.text)
		}
	}
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' || r == '\\' || r == '[' || r == ']' || r == '$' || r == '.':
		case r >= '0' && r <= '9':
			_ = i // digits allowed anywhere; pure numbers accepted too (ISCAS names)
		default:
			return false
		}
	}
	return true
}

var gatePrims = map[string]logic.GateType{
	"and": logic.And, "or": logic.Or, "nand": logic.Nand, "nor": logic.Nor,
	"xor": logic.Xor, "xnor": logic.Xnor, "not": logic.Not, "buf": logic.Buf,
}

// Parse reads one structural module and builds a circuit.
func Parse(r io.Reader) (*circuit.Circuit, error) {
	toks, err := lex(r)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	if err := p.expect("module"); err != nil {
		return nil, err
	}
	nameTok := p.next()
	if !isIdent(nameTok.text) {
		return nil, fmt.Errorf("verilog: line %d: bad module name %q", nameTok.line, nameTok.text)
	}
	b := circuit.NewBuilder(nameTok.text)
	// Port list (names only; direction comes from declarations).
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for {
		t := p.next()
		if t.text == ")" {
			break
		}
		if t.text == "," {
			continue
		}
		if !isIdent(t.text) {
			return nil, fmt.Errorf("verilog: line %d: bad port %q", t.line, t.text)
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}

	type gateInst struct {
		line  int
		prim  string
		terms []string
	}
	var (
		gates   []gateInst
		outputs []string
		assigns [][2]token // dst, src
	)
	declared := map[string]bool{}
	gi := 0
	for {
		t := p.next()
		switch t.text {
		case "endmodule":
			goto done
		case "":
			return nil, fmt.Errorf("verilog: unexpected end of file (missing endmodule)")
		case "input":
			names, err := p.identList()
			if err != nil {
				return nil, err
			}
			for _, n := range names {
				if declared[n] {
					return nil, fmt.Errorf("verilog: line %d: %q declared twice", t.line, n)
				}
				declared[n] = true
				b.Input(n)
			}
		case "output":
			names, err := p.identList()
			if err != nil {
				return nil, err
			}
			for _, n := range names {
				if !declared[n] {
					declared[n] = true
					b.Net(n)
				}
				outputs = append(outputs, n)
			}
		case "wire":
			names, err := p.identList()
			if err != nil {
				return nil, err
			}
			for _, n := range names {
				if !declared[n] {
					declared[n] = true
					b.Net(n)
				}
			}
		case "assign":
			dst := p.next()
			if err := p.expect("="); err != nil {
				return nil, err
			}
			src := p.next()
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			assigns = append(assigns, [2]token{dst, src})
		case "dff":
			// Optional instance name.
			inst := p.next()
			if inst.text != "(" {
				if err := p.expect("("); err != nil {
					return nil, err
				}
			}
			q := p.next()
			if err := p.expect(","); err != nil {
				return nil, err
			}
			d := p.next()
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			if !isIdent(q.text) || !isIdent(d.text) {
				return nil, fmt.Errorf("verilog: line %d: bad dff terminals", t.line)
			}
			b.DeclareFlipFlop(fmt.Sprintf("dff%d", gi), b.Net(q.text), b.Net(d.text))
			gi++
		default:
			prim, ok := gatePrims[t.text]
			if !ok {
				return nil, fmt.Errorf("verilog: line %d: unsupported construct %q", t.line, t.text)
			}
			_ = prim
			// Optional instance name before '('.
			nt := p.next()
			if nt.text != "(" {
				if !isIdent(nt.text) {
					return nil, fmt.Errorf("verilog: line %d: bad instance name %q", nt.line, nt.text)
				}
				if err := p.expect("("); err != nil {
					return nil, err
				}
			}
			var terms []string
			for {
				tt := p.next()
				if tt.text == ")" {
					break
				}
				if tt.text == "," {
					continue
				}
				if !isIdent(tt.text) {
					return nil, fmt.Errorf("verilog: line %d: bad terminal %q", tt.line, tt.text)
				}
				terms = append(terms, tt.text)
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			if len(terms) < 2 {
				return nil, fmt.Errorf("verilog: line %d: gate needs an output and at least one input", t.line)
			}
			gates = append(gates, gateInst{t.line, t.text, terms})
		}
	}
done:
	for _, g := range gates {
		out := b.Net(g.terms[0])
		ins := make([]circuit.NetID, len(g.terms)-1)
		for i, n := range g.terms[1:] {
			ins[i] = b.Net(n)
		}
		b.GateInto(gatePrims[g.prim], out, ins...)
	}
	for _, as := range assigns {
		dst, src := as[0], as[1]
		if !isIdent(dst.text) {
			return nil, fmt.Errorf("verilog: line %d: bad assign target %q", dst.line, dst.text)
		}
		switch src.text {
		case "1'b0", "1'B0":
			b.GateInto(logic.Const0, b.Net(dst.text))
		case "1'b1", "1'B1":
			b.GateInto(logic.Const1, b.Net(dst.text))
		default:
			if !isIdent(src.text) {
				return nil, fmt.Errorf("verilog: line %d: unsupported assign source %q", src.line, src.text)
			}
			b.GateInto(logic.Buf, b.Net(dst.text), b.Net(src.text))
		}
	}
	for _, n := range outputs {
		id, ok := b.Lookup(n)
		if !ok {
			return nil, fmt.Errorf("verilog: output %q never defined", n)
		}
		b.Output(id)
	}
	c, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("verilog: %w", err)
	}
	return c, nil
}

// Write emits the circuit as a structural Verilog module. Wired nets are
// not representable; Normalize first.
func Write(w io.Writer, c *circuit.Circuit) error {
	if c.HasWiredNets() {
		return fmt.Errorf("verilog: circuit %s has wired nets; Normalize before writing", c.Name)
	}
	bw := bufio.NewWriter(w)
	var ports []string
	for _, id := range c.Inputs {
		ports = append(ports, vname(c.Net(id).Name))
	}
	for _, id := range c.Outputs {
		ports = append(ports, vname(c.Net(id).Name))
	}
	fmt.Fprintf(bw, "// %s — generated by udsim\nmodule %s (%s);\n",
		c.Name, vname(c.Name), strings.Join(ports, ", "))
	writeDecl := func(kw string, ids []circuit.NetID) {
		if len(ids) == 0 {
			return
		}
		names := make([]string, len(ids))
		for i, id := range ids {
			names[i] = vname(c.Net(id).Name)
		}
		fmt.Fprintf(bw, "  %s %s;\n", kw, strings.Join(names, ", "))
	}
	writeDecl("input", c.Inputs)
	writeDecl("output", c.Outputs)
	var wires []circuit.NetID
	for i := range c.Nets {
		n := &c.Nets[i]
		if !n.IsInput && !n.IsOutput {
			wires = append(wires, n.ID)
		}
	}
	writeDecl("wire", wires)

	ffs := append([]circuit.DFF(nil), c.FFs...)
	sort.Slice(ffs, func(i, j int) bool { return ffs[i].Q < ffs[j].Q })
	for i, ff := range ffs {
		fmt.Fprintf(bw, "  dff d%d (%s, %s);\n", i, vname(c.Net(ff.Q).Name), vname(c.Net(ff.D).Name))
	}

	order, err := c.TopoGates()
	if err != nil {
		// Cyclic (asynchronous) circuits are still writable: emit gates
		// in declaration order.
		order = order[:0]
		for i := range c.Gates {
			order = append(order, circuit.GateID(i))
		}
	}
	gi := 0
	for _, gid := range order {
		g := c.Gate(gid)
		switch g.Type {
		case logic.Const0:
			fmt.Fprintf(bw, "  assign %s = 1'b0;\n", vname(c.Net(g.Output).Name))
			continue
		case logic.Const1:
			fmt.Fprintf(bw, "  assign %s = 1'b1;\n", vname(c.Net(g.Output).Name))
			continue
		}
		prim := strings.ToLower(g.Type.String())
		terms := make([]string, 0, len(g.Inputs)+1)
		terms = append(terms, vname(c.Net(g.Output).Name))
		for _, in := range g.Inputs {
			terms = append(terms, vname(c.Net(in).Name))
		}
		fmt.Fprintf(bw, "  %s g%d (%s);\n", prim, gi, strings.Join(terms, ", "))
		gi++
	}
	fmt.Fprintf(bw, "endmodule\n")
	return bw.Flush()
}

// vname makes a name safe as a Verilog identifier: names that start with
// a digit or contain odd characters are prefixed/escaped.
func vname(s string) string {
	safe := true
	for i, r := range s {
		ok := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			safe = false
			break
		}
	}
	if safe && s != "" {
		return s
	}
	var b strings.Builder
	b.WriteString("n_")
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}
