package verilog

import (
	"bytes"
	"strings"
	"testing"

	"udsim/internal/equiv"
	"udsim/internal/gen"
	"udsim/internal/logic"
	"udsim/internal/refsim"
)

const c17v = `
// ISCAS-85 c17 in structural Verilog
module c17 (N1, N2, N3, N6, N7, N22, N23);
  input N1, N2, N3, N6, N7;
  output N22, N23;
  wire N10, N11, N16, N19;
  nand g0 (N10, N1, N3);
  nand g1 (N11, N3, N6);
  nand g2 (N16, N2, N11);
  nand g3 (N19, N11, N7);
  nand g4 (N22, N10, N16);
  nand g5 (N23, N16, N19);
endmodule
`

func TestParseC17(t *testing.T) {
	c, err := Parse(strings.NewReader(c17v))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "c17" || len(c.Inputs) != 5 || len(c.Outputs) != 2 || c.NumGates() != 6 {
		t.Fatalf("shape wrong: %s", c)
	}
	// All-zero inputs → both outputs 0 (same truth check as the bench85
	// tests, proving the two parsers agree).
	vals, err := refsim.Evaluate(c, make([]bool, 5))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"N22", "N23"} {
		id, _ := c.NetByName(name)
		if vals[id] {
			t.Errorf("%s = 1, want 0", name)
		}
	}
}

func TestParseCommentsAndAssign(t *testing.T) {
	src := `
/* block
   comment */
module m (a, y, z, k);
  input a;            // trailing comment
  output y, z, k;
  assign y = a;
  assign z = 1'b1;
  assign k = 1'b0;
endmodule
`
	c, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	vals, err := refsim.Evaluate(c, []bool{true})
	if err != nil {
		t.Fatal(err)
	}
	y, _ := c.NetByName("y")
	z, _ := c.NetByName("z")
	k, _ := c.NetByName("k")
	if !vals[y] || !vals[z] || vals[k] {
		t.Errorf("assign semantics wrong: y=%v z=%v k=%v", vals[y], vals[z], vals[k])
	}
}

func TestParseDFF(t *testing.T) {
	src := `
module t (a, q);
  input a;
  output q;
  wire d;
  dff d0 (q, d);
  xor g0 (d, a, q);
endmodule
`
	c, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.FFs) != 1 {
		t.Fatalf("got %d flip-flops", len(c.FFs))
	}
}

func TestParseAnonymousInstances(t *testing.T) {
	src := "module m (a, b, y);\ninput a, b;\noutput y;\nand (y, a, b);\nendmodule\n"
	c, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	y, _ := c.NetByName("y")
	if g := c.Gate(c.Net(y).Drivers[0]); g.Type != logic.And {
		t.Errorf("got %v", g.Type)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no module":     "wire x;\n",
		"bad construct": "module m (a);\ninput a;\nflipflop f (a);\nendmodule\n",
		"no endmodule":  "module m (a);\ninput a;\n",
		"few terms":     "module m (a, y);\ninput a;\noutput y;\nand g (y);\nendmodule\n",
		"dup decl":      "module m (a);\ninput a;\ninput a;\nendmodule\n",
		"undef output":  "module m (y);\noutput y2;\nendmodule\n",
		"bad assign":    "module m (a, y);\ninput a;\noutput y;\nassign y = 2'b10;\nendmodule\n",
		"unterminated":  "module m (a); /* foo",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteParseRoundTripEquivalent(t *testing.T) {
	orig, err := gen.ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, orig.Normalize()); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reparse: %v\nfirst lines:\n%s", err, firstLines(buf.String(), 12))
	}
	res, err := equiv.Check(orig, back, 2048, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("round trip not equivalent: %+v", res.Counterexample)
	}
}

func TestWriteSequentialAndConsts(t *testing.T) {
	c := gen.Counter(3)
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "dff d0 (") {
		t.Errorf("missing dff:\n%s", out)
	}
	back, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.FFs) != 3 {
		t.Errorf("flip-flops lost: %d", len(back.FFs))
	}
}

func TestVName(t *testing.T) {
	if vname("abc_1") != "abc_1" {
		t.Error("safe name mangled")
	}
	if v := vname("123"); !strings.HasPrefix(v, "n_") {
		t.Errorf("digit-leading name not prefixed: %q", v)
	}
	if v := vname("a.b$c"); strings.ContainsAny(v, ".$") {
		t.Errorf("unsafe characters survive: %q", v)
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
