package fault

import (
	"math/rand"
	"testing"

	"udsim/internal/circuit"
	"udsim/internal/ckttest"
	"udsim/internal/logic"
	"udsim/internal/refsim"
	"udsim/internal/vectors"
)

// serialOracle grades one fault by brute force: simulate the faulty
// circuit scalar (forcing the net after evaluation) and compare outputs.
func serialOracle(t *testing.T, c *circuit.Circuit, f Fault, vecs [][]bool) (detectedAt int, detected bool) {
	t.Helper()
	for v, vec := range vecs {
		good, err := refsim.Evaluate(c, vec)
		if err != nil {
			t.Fatal(err)
		}
		bad := evalWithFault(t, c, f, vec)
		for _, o := range c.Outputs {
			if good[o] != bad[o] {
				return v, true
			}
		}
	}
	return 0, false
}

// evalWithFault evaluates zero-delay with a stuck net by repeated sweeps
// (the circuit is acyclic, so depth+1 sweeps converge).
func evalWithFault(t *testing.T, c *circuit.Circuit, f Fault, vec []bool) []bool {
	t.Helper()
	vals := make([]bool, c.NumNets())
	for i, id := range c.Inputs {
		vals[id] = vec[i]
	}
	force := func() { vals[f.Net] = f.Kind == StuckAt1 }
	force()
	order, err := c.TopoGates()
	if err != nil {
		t.Fatal(err)
	}
	for sweep := 0; sweep < 2; sweep++ { // second sweep is a no-op check
		for _, gid := range order {
			g := c.Gate(gid)
			ins := make([]bool, len(g.Inputs))
			for j, in := range g.Inputs {
				ins[j] = vals[in]
			}
			if g.Output != f.Net {
				vals[g.Output] = g.Type.EvalBool(ins)
			}
		}
		force()
	}
	return vals
}

func TestMatchesSerialOracle(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 6; trial++ {
		c := ckttest.Random(r, 25, 4)
		s, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		cn := s.Circuit()
		faults := AllFaults(cn)
		vecs := vectors.Random(24, len(cn.Inputs), int64(trial)).Bits
		res, err := s.Run(faults, vecs)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range faults {
			wantVec, wantDet := serialOracle(t, cn, f, vecs)
			gotVec, gotDet := res.Detected[f]
			if wantDet != gotDet {
				t.Fatalf("trial %d fault %v: parallel detected=%v oracle=%v", trial, f, gotDet, wantDet)
			}
			if wantDet && gotVec != wantVec {
				t.Fatalf("trial %d fault %v: first vector %d, oracle %d", trial, f, gotVec, wantVec)
			}
		}
	}
}

func TestBatchBoundaries(t *testing.T) {
	// A circuit with enough nets to force several batches.
	r := rand.New(rand.NewSource(9))
	c := ckttest.Random(r, 80, 6)
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	cn := s.Circuit()
	faults := AllFaults(cn)
	if len(faults) <= 2*BatchSize {
		t.Fatalf("want >%d faults, got %d", 2*BatchSize, len(faults))
	}
	vecs := vectors.Random(32, len(cn.Inputs), 3).Bits
	res, err := s.Run(faults, vecs)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Detected) + len(res.Undetected); got != len(faults) {
		t.Fatalf("graded %d of %d faults", got, len(faults))
	}
	if res.Coverage() <= 0.3 {
		t.Errorf("implausibly low coverage %.2f with random vectors", res.Coverage())
	}
	t.Logf("coverage %.1f%% (%d/%d)", 100*res.Coverage(), len(res.Detected), len(faults))
}

func TestInputFault(t *testing.T) {
	// O = AND(A, B): A/sa0 is detected by (1,1); A/sa1 by (0,1).
	b := circuit.NewBuilder("and2")
	a := b.Input("A")
	bb := b.Input("B")
	o := b.Gate(logic.And, "O", a, bb)
	b.Output(o)
	c := b.MustBuild()
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	vecs := [][]bool{{true, true}, {false, true}}
	res, err := s.Run([]Fault{{a, StuckAt0}, {a, StuckAt1}, {o, StuckAt1}}, vecs)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := res.Detected[Fault{a, StuckAt0}]; !ok || v != 0 {
		t.Errorf("A/sa0: %v %v", v, ok)
	}
	if v, ok := res.Detected[Fault{a, StuckAt1}]; !ok || v != 1 {
		t.Errorf("A/sa1: %v %v", v, ok)
	}
	if v, ok := res.Detected[Fault{o, StuckAt1}]; !ok || v != 1 {
		t.Errorf("O/sa1 should be caught by (0,1): %v %v", v, ok)
	}
}

func TestUndetectedFaults(t *testing.T) {
	// O = OR(A, A): with only the vector (1), O/sa1 and A/sa1 are
	// undetectable.
	b := circuit.NewBuilder("or")
	a := b.Input("A")
	o := b.Gate(logic.Or, "O", a, a)
	b.Output(o)
	c := b.MustBuild()
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(AllFaults(s.Circuit()), [][]bool{{true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Undetected) != 2 { // A/sa1 and O/sa1
		t.Errorf("undetected = %v", res.Undetected)
	}
	if res.Coverage() != 0.5 {
		t.Errorf("coverage = %v, want 0.5", res.Coverage())
	}
}

func TestCollapseEquivalent(t *testing.T) {
	b := circuit.NewBuilder("buf")
	a := b.Input("A")
	x := b.Gate(logic.Buf, "X", a)
	o := b.Gate(logic.Not, "O", x)
	b.Output(o)
	c := b.MustBuild()
	all := AllFaults(c)
	collapsed := CollapseEquivalent(c, all)
	if len(collapsed) >= len(all) {
		t.Errorf("collapsing removed nothing: %d vs %d", len(collapsed), len(all))
	}
	// Coverage semantics must be unaffected for the surviving faults.
	s, _ := New(c)
	vecs := [][]bool{{true}, {false}}
	res, err := s.Run(collapsed, vecs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() != 1.0 {
		t.Errorf("coverage %v, want 1.0 (everything observable)", res.Coverage())
	}
}

func TestErrors(t *testing.T) {
	b := circuit.NewBuilder("seq")
	q := b.FlipFlop("Q", circuit.NoNet)
	d := b.Gate(logic.Not, "D", q)
	b.BindFlipFlop(q, d)
	b.Output(d)
	if _, err := New(b.MustBuild()); err == nil {
		t.Error("expected sequential rejection")
	}
	s, err := New(ckttest.Fig4())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run([]Fault{{999, StuckAt0}}, nil); err == nil {
		t.Error("expected out-of-range fault error")
	}
	if _, err := s.Run([]Fault{{0, StuckAt0}}, [][]bool{{true}}); err == nil {
		t.Error("expected vector width error")
	}
}

func TestKindString(t *testing.T) {
	if StuckAt0.String() != "sa0" || StuckAt1.String() != "sa1" {
		t.Error("Kind strings wrong")
	}
}
