// Package fault implements parallel stuck-at fault simulation on top of
// the zero-delay Levelized Compiled Code engine — the classic application
// of bit-parallel compiled simulation and the reason techniques like the
// paper's were built: each of the 64 lanes of every machine word carries
// one faulty copy of the circuit (lane 0 is the fault-free machine), so a
// single straight-line pass grades 63 stuck-at faults against one vector.
//
// Faults are injected without any new instruction kinds: the compiler
// appends, after the last assignment of a faulted net, an AND with a
// per-batch "stuck-0 mask" word and an OR with a "stuck-1 mask" word.
// Lane k of the masks encodes whether fault k holds that net down or up;
// the fault-free lane's masks are all-ones/all-zeros, making the extra
// operations identity there.
package fault

import (
	"fmt"
	"math/bits"
	"sort"

	"udsim/internal/circuit"
	"udsim/internal/levelize"
	"udsim/internal/program"
)

// Kind is the stuck-at polarity.
type Kind uint8

const (
	// StuckAt0 holds the net at logic 0.
	StuckAt0 Kind = iota
	// StuckAt1 holds the net at logic 1.
	StuckAt1
)

// String renders "sa0" or "sa1".
func (k Kind) String() string {
	if k == StuckAt0 {
		return "sa0"
	}
	return "sa1"
}

// Fault is one single stuck-at fault on a net.
type Fault struct {
	Net  circuit.NetID
	Kind Kind
}

// String renders the fault as "netname/sa0".
func (f Fault) String() string { return fmt.Sprintf("net%d/%s", f.Net, f.Kind) }

// AllFaults enumerates both stuck-at faults on every net of the circuit —
// the uncollapsed single-stuck-at fault universe.
func AllFaults(c *circuit.Circuit) []Fault {
	out := make([]Fault, 0, 2*c.NumNets())
	for i := range c.Nets {
		out = append(out, Fault{circuit.NetID(i), StuckAt0}, Fault{circuit.NetID(i), StuckAt1})
	}
	return out
}

// CollapseEquivalent performs simple structural fault collapsing: faults
// on a single-fanout buffer's output are equivalent to faults on its
// input, so only the input's faults are kept. This is a small subset of
// classic equivalence collapsing, enough to shrink the universe visibly.
func CollapseEquivalent(c *circuit.Circuit, faults []Fault) []Fault {
	drop := make(map[Fault]bool)
	for i := range c.Gates {
		g := &c.Gates[i]
		if len(g.Inputs) != 1 {
			continue
		}
		in := g.Inputs[0]
		if len(c.Nets[in].Fanout) != 1 {
			continue
		}
		switch {
		case g.Type.Base() == g.Type: // buffer: same polarity equivalent
			drop[Fault{g.Output, StuckAt0}] = true
			drop[Fault{g.Output, StuckAt1}] = true
		default: // inverter: inverted polarity equivalent
			drop[Fault{g.Output, StuckAt0}] = true
			drop[Fault{g.Output, StuckAt1}] = true
		}
	}
	out := faults[:0]
	for _, f := range faults {
		if !drop[f] {
			out = append(out, f)
		}
	}
	return out
}

// Sim is a parallel stuck-at fault simulator. It batches faults 63 at a
// time (lane 0 is the fault-free machine) and grades them against vector
// streams with zero-delay semantics.
type Sim struct {
	c     *circuit.Circuit
	a     *levelize.Analysis
	base  *program.Program
	varOf []int32

	// Reusable per-batch buffers, pre-sized once so repeated Run calls
	// (fault-coverage sweeps) do not re-allocate state or code.
	lastWrite []int32 // per var: index of its last write in base code, -1 if none
	outVars   []int32
	stBuf     []uint64
	codeBuf   []program.Instr
}

// New compiles the fault simulator for a combinational circuit.
func New(c *circuit.Circuit) (*Sim, error) {
	if !c.Combinational() {
		return nil, fmt.Errorf("fault: circuit %s is sequential; break flip-flops first", c.Name)
	}
	c = c.Normalize()
	a, err := levelize.Analyze(c)
	if err != nil {
		return nil, err
	}
	varOf := make([]int32, c.NumNets())
	names := make([]string, c.NumNets())
	for i := range c.Nets {
		varOf[i] = int32(i)
		names[i] = c.Nets[i].Name
	}
	var code []program.Instr
	srcs := make([]int32, 0, 8)
	for _, gid := range a.LevelOrder {
		g := c.Gate(gid)
		srcs = srcs[:0]
		for _, in := range g.Inputs {
			srcs = append(srcs, varOf[in])
		}
		code = program.EmitGateEval(code, g.Type, varOf[g.Output], srcs)
	}
	p := &program.Program{WordBits: 64, NumVars: c.NumNets(), Code: code, VarNames: names}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{c: c, a: a, base: p, varOf: varOf}
	s.lastWrite = make([]int32, p.NumVars)
	for i := range s.lastWrite {
		s.lastWrite[i] = -1
	}
	for i, in := range p.Code {
		s.lastWrite[in.Dst] = int32(i)
	}
	s.outVars = make([]int32, len(c.Outputs))
	for i, o := range c.Outputs {
		s.outVars[i] = varOf[o]
	}
	s.stBuf = make([]uint64, 0, p.NumVars+2*BatchSize)
	s.codeBuf = make([]program.Instr, 0, len(p.Code)+2*BatchSize)
	return s, nil
}

// Circuit returns the (normalized) circuit.
func (s *Sim) Circuit() *circuit.Circuit { return s.c }

// BatchSize is the number of faults graded per compiled pass.
const BatchSize = 63

// Result is the outcome of grading a fault universe against a vector set.
type Result struct {
	// Detected maps each fault to the index of the first vector that
	// detected it (propagated a difference to a primary output).
	Detected map[Fault]int
	// Undetected lists the faults no vector exposed.
	Undetected []Fault
	// Vectors is the number of vectors applied.
	Vectors int
}

// Coverage returns the fault coverage fraction.
func (r *Result) Coverage() float64 {
	total := len(r.Detected) + len(r.Undetected)
	if total == 0 {
		return 1
	}
	return float64(len(r.Detected)) / float64(total)
}

// Run grades the fault list against the vector stream. Faults are
// processed in batches of 63; within a batch, every vector is applied to
// all faulty machines at once and compared against the fault-free lane.
func (s *Sim) Run(faults []Fault, vecs [][]bool) (*Result, error) {
	for _, f := range faults {
		if f.Net < 0 || int(f.Net) >= s.c.NumNets() {
			return nil, fmt.Errorf("fault: net %d out of range", f.Net)
		}
	}
	res := &Result{Detected: make(map[Fault]int), Vectors: len(vecs)}
	remaining := append([]Fault(nil), faults...)
	for start := 0; start < len(remaining); start += BatchSize {
		end := start + BatchSize
		if end > len(remaining) {
			end = len(remaining)
		}
		batch := remaining[start:end]
		detected, err := s.runBatch(batch, vecs)
		if err != nil {
			return nil, err
		}
		for i, f := range batch {
			if v, ok := detected[i]; ok {
				res.Detected[f] = v
			} else {
				res.Undetected = append(res.Undetected, f)
			}
		}
	}
	sort.Slice(res.Undetected, func(i, j int) bool {
		a, b := res.Undetected[i], res.Undetected[j]
		if a.Net != b.Net {
			return a.Net < b.Net
		}
		return a.Kind < b.Kind
	})
	return res, nil
}

// runBatch compiles the fault-injected program for one batch and grades
// it, returning batch-index → first detecting vector.
func (s *Sim) runBatch(batch []Fault, vecs [][]bool) (map[int]int, error) {
	// Mask state words: two per distinct faulted net in this batch. The
	// state and code buffers are pre-sized in New and reused per batch.
	nVars := s.base.NumVars
	type maskPair struct{ and, or int32 }
	masks := make(map[circuit.NetID]maskPair)
	st := s.stBuf[:nVars]
	for i := range st {
		st[i] = 0
	}
	newWord := func(init uint64) int32 {
		st = append(st, init)
		return int32(len(st) - 1)
	}
	for i, f := range batch {
		lane := uint(i + 1) // lane 0 is the good machine
		mp, ok := masks[f.Net]
		if !ok {
			mp = maskPair{newWord(^uint64(0)), newWord(0)}
			masks[f.Net] = mp
		}
		if f.Kind == StuckAt0 {
			st[mp.and] &^= 1 << lane
		} else {
			st[mp.or] |= 1 << lane
		}
	}

	// Rebuild the code with fault-injection ops after each faulted net's
	// final assignment (zero-delay: each net is assigned exactly once,
	// at the end of its gate's emission group). Primary-input faults are
	// injected up front each vector.
	code := s.codeBuf[:0]
	inject := func(v int32, mp maskPair) {
		code = append(code,
			program.Instr{Op: program.OpAnd, Dst: v, A: v, B: mp.and},
			program.Instr{Op: program.OpOr, Dst: v, A: v, B: mp.or},
		)
	}
	var piInject []circuit.NetID
	for net := range masks {
		if len(s.c.Nets[net].Drivers) == 0 {
			piInject = append(piInject, net)
		}
	}
	sort.Slice(piInject, func(i, j int) bool { return piInject[i] < piInject[j] })
	for i, in := range s.base.Code {
		code = append(code, in)
		for net, mp := range masks {
			v := s.varOf[net]
			if in.Dst == v && s.lastWrite[v] == int32(i) {
				inject(v, mp)
			}
		}
	}
	s.codeBuf = code[:0]
	p := &program.Program{WordBits: 64, NumVars: len(st), Code: code}
	if err := p.Validate(); err != nil {
		return nil, err
	}

	detected := make(map[int]int)
	outVars := s.outVars
	undetectedMask := ^uint64(1) // lanes 1..63 pending
	if len(batch) < BatchSize {
		undetectedMask &= (1 << uint(len(batch)+1)) - 1
	}
	for v, vec := range vecs {
		if len(vec) != len(s.c.Inputs) {
			return nil, fmt.Errorf("fault: vector width %d, want %d", len(vec), len(s.c.Inputs))
		}
		for i, id := range s.c.Inputs {
			var w uint64
			if vec[i] {
				w = ^uint64(0)
			}
			st[s.varOf[id]] = w
		}
		// Apply primary-input faults directly.
		for _, net := range piInject {
			mp := masks[net]
			st[s.varOf[net]] = (st[s.varOf[net]] & st[mp.and]) | st[mp.or]
		}
		p.Run(st)
		var diff uint64
		for _, ov := range outVars {
			w := st[ov]
			good := w & 1
			diff |= w ^ (0 - good) // lanes differing from the good value
		}
		diff &= undetectedMask
		for diff != 0 {
			lane := bits.TrailingZeros64(diff)
			diff &^= 1 << uint(lane)
			undetectedMask &^= 1 << uint(lane)
			detected[lane-1] = v
		}
		if undetectedMask == 0 {
			break
		}
	}
	return detected, nil
}
