// Package scoap implements the classic SCOAP (Sandia Controllability/
// Observability Analysis Program) testability measures for combinational
// circuits: CC0/CC1, the cost of setting a net to 0 or 1 from the primary
// inputs, and CO, the cost of observing a net at a primary output. The
// measures explain the fault-simulation extension's results: faults that
// random vectors fail to detect cluster on nets with poor SCOAP numbers.
//
// Conventions (Goldstein 1979): primary inputs have CC0 = CC1 = 1;
// every gate adds 1 to the controllability of its output and to the
// observability of its inputs; primary outputs have CO = 0. All measures
// here are computed over the two-valued model.
package scoap

import (
	"fmt"
	"sort"

	"udsim/internal/circuit"
	"udsim/internal/levelize"
	"udsim/internal/logic"
)

// Infinity marks unreachable measures (nets that cannot be controlled or
// observed, e.g. behind constant gates).
const Infinity = int64(1) << 40

// Analysis holds the SCOAP measures for every net.
type Analysis struct {
	C *circuit.Circuit
	// CC0[n] and CC1[n] are the zero/one controllabilities.
	CC0, CC1 []int64
	// CO[n] is the observability.
	CO []int64
}

// Analyze computes the measures. The circuit must be combinational; wired
// nets are normalized away.
func Analyze(c *circuit.Circuit) (*Analysis, error) {
	if !c.Combinational() {
		return nil, fmt.Errorf("scoap: circuit %s is sequential; break flip-flops first", c.Name)
	}
	c = c.Normalize()
	lv, err := levelize.Analyze(c)
	if err != nil {
		return nil, err
	}
	a := &Analysis{
		C:   c,
		CC0: make([]int64, c.NumNets()),
		CC1: make([]int64, c.NumNets()),
		CO:  make([]int64, c.NumNets()),
	}
	for i := range a.CC0 {
		a.CC0[i], a.CC1[i], a.CO[i] = Infinity, Infinity, Infinity
	}
	for _, id := range c.Inputs {
		a.CC0[id], a.CC1[id] = 1, 1
	}

	// Controllability: forward pass in level order.
	for _, gid := range lv.LevelOrder {
		g := c.Gate(gid)
		c0, c1 := gateControllability(a, g)
		a.CC0[g.Output] = c0
		a.CC1[g.Output] = c1
	}

	// Observability: backward pass in reverse level order.
	for _, id := range c.Outputs {
		a.CO[id] = 0
	}
	order := lv.LevelOrder
	for i := len(order) - 1; i >= 0; i-- {
		g := c.Gate(order[i])
		coOut := a.CO[g.Output]
		if coOut >= Infinity {
			continue
		}
		for pin, in := range g.Inputs {
			co := pinObservability(a, g, pin, coOut)
			if co < a.CO[in] {
				a.CO[in] = co
			}
		}
	}
	return a, nil
}

func satAdd(vals ...int64) int64 {
	var s int64
	for _, v := range vals {
		if v >= Infinity {
			return Infinity
		}
		s += v
	}
	if s >= Infinity {
		return Infinity
	}
	return s
}

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// gateControllability computes (CC0, CC1) of a gate's output per the
// SCOAP rules.
func gateControllability(a *Analysis, g *circuit.Gate) (cc0, cc1 int64) {
	ins := g.Inputs
	sum0 := int64(0) // Σ CC0 of all inputs
	sum1 := int64(0)
	min0 := Infinity // cheapest single 0
	min1 := Infinity
	for _, in := range ins {
		sum0 = satAdd(sum0, a.CC0[in])
		sum1 = satAdd(sum1, a.CC1[in])
		min0 = minI(min0, a.CC0[in])
		min1 = minI(min1, a.CC1[in])
	}
	switch g.Type {
	case logic.Const0:
		return 0, Infinity
	case logic.Const1:
		return Infinity, 0
	case logic.Buf:
		return satAdd(a.CC0[ins[0]], 1), satAdd(a.CC1[ins[0]], 1)
	case logic.Not:
		return satAdd(a.CC1[ins[0]], 1), satAdd(a.CC0[ins[0]], 1)
	case logic.And:
		return satAdd(min0, 1), satAdd(sum1, 1)
	case logic.Nand:
		return satAdd(sum1, 1), satAdd(min0, 1)
	case logic.Or:
		return satAdd(sum0, 1), satAdd(min1, 1)
	case logic.Nor:
		return satAdd(min1, 1), satAdd(sum0, 1)
	case logic.Xor, logic.Xnor:
		// Parity: cost of producing even/odd parity is the cheapest
		// assignment over input combinations; the standard 2-input rule
		// generalized greedily: choose per input the cheaper polarity,
		// then fix parity by flipping the input with the smallest
		// polarity-swap cost.
		even, swap := int64(0), Infinity
		for _, in := range ins {
			lo, hi := a.CC0[in], a.CC1[in]
			if hi < lo {
				lo, hi = hi, lo
			}
			even = satAdd(even, lo)
			if hi < Infinity {
				swap = minI(swap, hi-lo)
			}
		}
		// evenCost: cheapest assignment (any parity); flipping one input
		// changes parity at cost `swap`.
		cheap := even
		flipped := satAdd(even, swap)
		// Determine which parity the cheap assignment produces.
		ones := 0
		for _, in := range ins {
			if a.CC1[in] < a.CC0[in] {
				ones++
			}
		}
		cheapParity := ones % 2 // 1 = odd number of ones
		var cOdd, cEven int64
		if cheapParity == 1 {
			cOdd, cEven = cheap, flipped
		} else {
			cEven, cOdd = cheap, flipped
		}
		// XOR output is 1 on odd parity; XNOR on even.
		if g.Type == logic.Xor {
			return satAdd(cEven, 1), satAdd(cOdd, 1)
		}
		return satAdd(cOdd, 1), satAdd(cEven, 1)
	}
	return Infinity, Infinity
}

// pinObservability computes the observability of input pin `pin` of gate
// g, given the gate output's observability.
func pinObservability(a *Analysis, g *circuit.Gate, pin int, coOut int64) int64 {
	switch g.Type {
	case logic.Buf, logic.Not:
		return satAdd(coOut, 1)
	case logic.And, logic.Nand:
		// Other inputs must be 1.
		cost := int64(0)
		for j, in := range g.Inputs {
			if j != pin {
				cost = satAdd(cost, a.CC1[in])
			}
		}
		return satAdd(coOut, cost, 1)
	case logic.Or, logic.Nor:
		cost := int64(0)
		for j, in := range g.Inputs {
			if j != pin {
				cost = satAdd(cost, a.CC0[in])
			}
		}
		return satAdd(coOut, cost, 1)
	case logic.Xor, logic.Xnor:
		// Other inputs must be set to anything known: cheapest polarity.
		cost := int64(0)
		for j, in := range g.Inputs {
			if j != pin {
				cost = satAdd(cost, minI(a.CC0[in], a.CC1[in]))
			}
		}
		return satAdd(coOut, cost, 1)
	}
	return Infinity
}

// Testability returns the combined detect cost of a stuck-at fault on a
// net: controlling the net to the opposite value plus observing it.
func (a *Analysis) Testability(n circuit.NetID, stuckAt1 bool) int64 {
	if stuckAt1 {
		return satAdd(a.CC0[n], a.CO[n]) // must drive 0 to expose sa1
	}
	return satAdd(a.CC1[n], a.CO[n])
}

// HardestNets returns the k nets with the highest combined testability
// cost (max over both fault polarities), descending — the random-pattern-
// resistant corners of the circuit.
func (a *Analysis) HardestNets(k int) []circuit.NetID {
	ids := make([]circuit.NetID, a.C.NumNets())
	for i := range ids {
		ids[i] = circuit.NetID(i)
	}
	cost := func(n circuit.NetID) int64 {
		c := a.Testability(n, false)
		if c2 := a.Testability(n, true); c2 > c {
			c = c2
		}
		return c
	}
	sort.Slice(ids, func(x, y int) bool {
		cx, cy := cost(ids[x]), cost(ids[y])
		if cx != cy {
			return cx > cy
		}
		return ids[x] < ids[y]
	})
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}
