package scoap

import (
	"math/rand"
	"testing"

	"udsim/internal/circuit"
	"udsim/internal/ckttest"
	"udsim/internal/fault"
	"udsim/internal/gen"
	"udsim/internal/logic"
	"udsim/internal/vectors"
)

func analyze(t *testing.T, c *circuit.Circuit) *Analysis {
	t.Helper()
	a, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestHandComputedAnd(t *testing.T) {
	// O = AND(a, b): CC0 = min(1,1)+1 = 2, CC1 = 1+1+1 = 3.
	// CO(a) = CO(O) + CC1(b) + 1 = 0+1+1 = 2.
	b := circuit.NewBuilder("and")
	a := b.Input("a")
	bb := b.Input("b")
	o := b.Gate(logic.And, "o", a, bb)
	b.Output(o)
	an := analyze(t, b.MustBuild())
	oID, _ := an.C.NetByName("o")
	aID, _ := an.C.NetByName("a")
	if an.CC0[oID] != 2 || an.CC1[oID] != 3 {
		t.Errorf("AND out CC = (%d,%d), want (2,3)", an.CC0[oID], an.CC1[oID])
	}
	if an.CO[oID] != 0 {
		t.Errorf("output CO = %d, want 0", an.CO[oID])
	}
	if an.CO[aID] != 2 {
		t.Errorf("CO(a) = %d, want 2", an.CO[aID])
	}
}

func TestHandComputedChainAndDuals(t *testing.T) {
	// x = NOT a: CC0(x) = CC1(a)+1 = 2; CC1(x) = 2.
	// y = NOR(x, b): CC1(y) = min CC0 +1? NOR: CC1 = ΣCC0+1... check
	// against the dual forms.
	b := circuit.NewBuilder("c")
	a := b.Input("a")
	bb := b.Input("b")
	x := b.Gate(logic.Not, "x", a)
	y := b.Gate(logic.Nor, "y", x, bb)
	b.Output(y)
	an := analyze(t, b.MustBuild())
	xID, _ := an.C.NetByName("x")
	yID, _ := an.C.NetByName("y")
	if an.CC0[xID] != 2 || an.CC1[xID] != 2 {
		t.Errorf("NOT CC = (%d,%d), want (2,2)", an.CC0[xID], an.CC1[xID])
	}
	// NOR: CC1 = min over inputs... no: NOR output is 1 iff all inputs 0:
	// CC1 = ΣCC0+1 = (2+1)+1 = 4; CC0 = min CC1 +1 = min(2,1)+1 = 2.
	if an.CC1[yID] != 4 || an.CC0[yID] != 2 {
		t.Errorf("NOR CC = (%d,%d), want (2,4)", an.CC0[yID], an.CC1[yID])
	}
}

func TestXorMatchesStandardTwoInputRule(t *testing.T) {
	// Feed the XOR with inputs of asymmetric controllability through
	// AND/OR stages and compare with the textbook two-input rule.
	b := circuit.NewBuilder("x")
	a := b.Input("a")
	bb := b.Input("b")
	cc := b.Input("c")
	dd := b.Input("d")
	p := b.Gate(logic.And, "p", a, bb) // CC0=2, CC1=3
	q := b.Gate(logic.Or, "q", cc, dd) // CC0=3, CC1=2
	x := b.Gate(logic.Xor, "x", p, q)
	b.Output(x)
	an := analyze(t, b.MustBuild())
	pID, _ := an.C.NetByName("p")
	qID, _ := an.C.NetByName("q")
	xID, _ := an.C.NetByName("x")
	wantCC1 := minI(an.CC1[pID]+an.CC0[qID], an.CC0[pID]+an.CC1[qID]) + 1
	wantCC0 := minI(an.CC0[pID]+an.CC0[qID], an.CC1[pID]+an.CC1[qID]) + 1
	if an.CC1[xID] != wantCC1 || an.CC0[xID] != wantCC0 {
		t.Errorf("XOR CC = (%d,%d), want (%d,%d)", an.CC0[xID], an.CC1[xID], wantCC0, wantCC1)
	}
}

func TestConstantsAreUncontrollable(t *testing.T) {
	b := circuit.NewBuilder("k")
	a := b.Input("a")
	one := b.Gate(logic.Const1, "one")
	o := b.Gate(logic.And, "o", a, one)
	b.Output(o)
	an := analyze(t, b.MustBuild())
	oneID, _ := an.C.NetByName("one")
	if an.CC1[oneID] != 0 || an.CC0[oneID] < Infinity {
		t.Errorf("const1 CC = (%d,%d)", an.CC0[oneID], an.CC1[oneID])
	}
	// o stuck-at-1 requires controlling o to 0 — possible via a. But
	// one/sa0... testing one to 1 is free; observing it costs.
	if an.Testability(oneID, false) >= Infinity {
		t.Error("sa0 on const-1 net should be testable")
	}
	if an.Testability(oneID, true) < Infinity {
		t.Error("sa1 on const-1 net must be untestable")
	}
}

func TestDeeperNetsHarder(t *testing.T) {
	// Along a chain, controllability cost grows monotonically.
	c := ckttest.Deep(12, 0)
	an := analyze(t, c)
	var prev int64 = -1
	id, _ := an.C.NetByName("A")
	cur := id
	for {
		cost := minI(an.CC0[cur], an.CC1[cur])
		if cost <= prev {
			t.Fatalf("controllability did not grow along the chain at net %d", cur)
		}
		prev = cost
		n := an.C.Net(cur)
		if len(n.Fanout) == 0 {
			break
		}
		cur = an.C.Gate(n.Fanout[0]).Output
	}
}

// TestSCOAPPredictsUndetectedFaults is the payoff test: faults that 128
// random vectors miss must have a significantly higher mean SCOAP detect
// cost than faults that are caught.
func TestSCOAPPredictsUndetectedFaults(t *testing.T) {
	c, err := gen.ISCAS85("c880")
	if err != nil {
		t.Fatal(err)
	}
	fs, err := fault.New(c)
	if err != nil {
		t.Fatal(err)
	}
	cn := fs.Circuit()
	an := analyze(t, cn)
	faults := fault.AllFaults(cn)
	vecs := vectors.Random(128, len(cn.Inputs), 1990).Bits
	res, err := fs.Run(faults, vecs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Undetected) == 0 {
		t.Skip("everything detected; nothing to compare")
	}
	mean := func(fs []fault.Fault) float64 {
		var s float64
		n := 0
		for _, f := range fs {
			c := an.Testability(f.Net, f.Kind == fault.StuckAt1)
			if c >= Infinity {
				continue // untestable faults have no finite cost
			}
			s += float64(c)
			n++
		}
		if n == 0 {
			return 0
		}
		return s / float64(n)
	}
	var detected []fault.Fault
	for f := range res.Detected {
		detected = append(detected, f)
	}
	mDet, mUndet := mean(detected), mean(res.Undetected)
	t.Logf("mean SCOAP detect cost: detected %.1f, undetected %.1f", mDet, mUndet)
	if mUndet <= mDet {
		t.Errorf("SCOAP failed to separate: undetected %.1f ≤ detected %.1f", mUndet, mDet)
	}
}

func TestHardestNets(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	c := ckttest.Random(r, 40, 5)
	an := analyze(t, c)
	hard := an.HardestNets(5)
	if len(hard) != 5 {
		t.Fatalf("got %d nets", len(hard))
	}
	cost := func(n circuit.NetID) int64 {
		c0 := an.Testability(n, false)
		if c1 := an.Testability(n, true); c1 > c0 {
			return c1
		}
		return c0
	}
	for i := 1; i < len(hard); i++ {
		if cost(hard[i-1]) < cost(hard[i]) {
			t.Fatal("HardestNets not sorted")
		}
	}
}

func TestSequentialRejected(t *testing.T) {
	b := circuit.NewBuilder("seq")
	q := b.FlipFlop("Q", circuit.NoNet)
	d := b.Gate(logic.Not, "D", q)
	b.BindFlipFlop(q, d)
	b.Output(d)
	if _, err := Analyze(b.MustBuild()); err == nil {
		t.Fatal("expected error")
	}
}
