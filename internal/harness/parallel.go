package harness

import (
	"fmt"
	"runtime"
	"time"

	"udsim/internal/parsim"
	"udsim/internal/shard"
	"udsim/internal/texttable"
)

// ParallelExec reproduces the multicore execution study: for each
// circuit, the parallel technique's sequential baseline against the
// level-sharded and vector-batch strategies at GOMAXPROCS workers,
// alongside the shard plan's shape (levels, clusters, bulk-synchronous
// cost) and what the auto-picker chooses. The sharded times are
// bit-identical simulations; vector batching trades stream coherence for
// barrier-free scaling.
func ParallelExec(o Options) (*Result, error) {
	o = o.withDefaults()
	workers := runtime.GOMAXPROCS(0)
	t := texttable.New(
		fmt.Sprintf("Multicore execution — parallel technique (%d vectors, W=%d, %d workers)",
			o.Vectors, o.WordBits, workers),
		"Circuit", "Levels", "Clusters", "Est", "Auto", "Seq", "Sharded", "Batch", "ShSpd", "BaSpd")
	for _, name := range o.Circuits {
		c, vecs, err := bench(o, name)
		if err != nil {
			return nil, err
		}
		measure := func(strategy shard.Strategy) (time.Duration, *parsim.Sim, error) {
			s, err := parsim.Compile(c, parsim.Config{WordBits: o.WordBits})
			if err != nil {
				return 0, nil, err
			}
			if _, err := s.ConfigureExec(strategy, workers); err != nil {
				return 0, nil, err
			}
			d, err := bestOf(o.Repeats, func() error { return s.ResetConsistent(nil) }, vecs,
				func(vec []bool) error { return s.ApplyVector(vec) })
			if err != nil {
				s.Close()
				return 0, nil, err
			}
			return d, s, nil
		}
		dSeq, sSeq, err := measure(shard.Sequential)
		if err != nil {
			return nil, err
		}
		sSeq.Close()
		dSh, sSh, err := measure(shard.Sharded)
		if err != nil {
			return nil, err
		}
		plan := sSh.ExecPlan()
		st := plan.Stats()
		est := plan.EstimatedSpeedup()
		sSh.Close()
		// Vector batching parallelizes the stream, not the vector: time it
		// through ApplyStream over the whole set.
		sBa, err := parsim.Compile(c, parsim.Config{WordBits: o.WordBits})
		if err != nil {
			return nil, err
		}
		if _, err := sBa.ConfigureExec(shard.VectorBatch, workers); err != nil {
			return nil, err
		}
		var dBa time.Duration
		for r := 0; r < o.Repeats; r++ {
			if err := sBa.ResetConsistent(nil); err != nil {
				return nil, err
			}
			start := time.Now()
			if err := sBa.ApplyStream(vecs.Bits); err != nil {
				return nil, err
			}
			if d := time.Since(start); r == 0 || d < dBa {
				dBa = d
			}
		}
		sBa.Close()
		auto, err := parsim.Compile(c, parsim.Config{WordBits: o.WordBits})
		if err != nil {
			return nil, err
		}
		resolved, err := auto.ConfigureExec(shard.Auto, workers)
		if err != nil {
			return nil, err
		}
		auto.Close()
		t.Add(name, st.Levels, st.Clusters, fmt.Sprintf("%.2f", est), resolved.String(),
			secs(dSeq), secs(dSh), secs(dBa), ratio(dSeq, dSh), ratio(dSeq, dBa))
	}
	return &Result{Table: t, Notes: []string{
		"sharded runs are bit-identical to sequential; batch runs are independent substreams",
		fmt.Sprintf("Est = cost-model speedup estimate at %d workers; Auto = strategy the picker resolves", workers),
	}}, nil
}
