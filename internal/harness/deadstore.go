package harness

import (
	"fmt"

	"udsim/internal/align"
	"udsim/internal/circuit"
	"udsim/internal/parsim"
	"udsim/internal/pcset"
	"udsim/internal/texttable"
	"udsim/internal/vectors"
)

// deadStoreEngine is the slice of the simulator API the dead-store
// experiment drives: both compiled techniques satisfy it.
type deadStoreEngine interface {
	Circuit() *circuit.Circuit
	CodeSize() int
	EliminateDeadStores() (int, error)
	ResetConsistent(inputs []bool) error
	ApplyVector(vec []bool) error
	Final(n circuit.NetID) bool
}

// DeadStore reports the dead-store eliminator's instruction-count
// reduction per circuit and technique, validating each stripped engine
// against its unmodified twin: both replay the same vector stream and
// every net's settled value must match on every vector. The removals are
// exactly the stores the vector-loop liveness fixpoint (verify rule
// V009's analysis) proves unobservable.
func DeadStore(o Options) (*Result, error) {
	o = o.withDefaults()
	t := texttable.New("Dead-store elimination (validated against the unstripped engines)",
		"Circuit", "Technique", "Instrs", "Removed", "Reduction", "Vectors checked")
	vcount := o.Vectors
	if vcount > 200 {
		vcount = 200 // equivalence replay is quadratic in engines, not time-critical
	}
	for _, name := range o.Circuits {
		c, vecs, err := bench(o, name)
		if err != nil {
			return nil, err
		}
		for _, tech := range []string{"pcset", "parallel", "parallel+trim", "parallel+cb+trim"} {
			build := func() (deadStoreEngine, error) {
				switch tech {
				case "pcset":
					return pcset.Compile(c, nil)
				case "parallel+cb+trim":
					// Cycle breaking widens bit-fields, which is where most
					// removable stores come from — the interesting row.
					norm, cfg, _, err := alignedConfig(c, align.MethodCycleBreak, o.WordBits, true)
					if err != nil {
						return nil, err
					}
					return parsim.Compile(norm, cfg)
				}
				return parsim.Compile(c, parsim.Config{WordBits: o.WordBits, Trim: tech == "parallel+trim"})
			}
			plain, err := build()
			if err != nil {
				return nil, err
			}
			stripped, err := build()
			if err != nil {
				return nil, err
			}
			before := stripped.CodeSize()
			removed, err := stripped.EliminateDeadStores()
			if err != nil {
				return nil, err
			}
			if got := before - stripped.CodeSize(); got != removed {
				return nil, fmt.Errorf("deadstore: %s/%s reports %d removed, code shrank by %d",
					name, tech, removed, got)
			}
			if err := equivalent(plain, stripped, vecs, vcount); err != nil {
				return nil, fmt.Errorf("deadstore: %s/%s: %w", name, tech, err)
			}
			t.Add(name, tech, before, removed,
				fmt.Sprintf("%.1f%%", 100*float64(removed)/float64(before)), vcount)
		}
	}
	return &Result{Table: t, Notes: []string{
		"removed = stores the cross-vector liveness fixpoint proves unobservable;",
		"settled values of every net verified identical across the full replay",
	}}, nil
}

// equivalent replays n vectors through both engines and compares every
// net's settled value after each vector.
func equivalent(a, b deadStoreEngine, vecs *vectors.Set, n int) error {
	c := a.Circuit()
	if err := a.ResetConsistent(nil); err != nil {
		return err
	}
	if err := b.ResetConsistent(nil); err != nil {
		return err
	}
	for i := 0; i < n && i < len(vecs.Bits); i++ {
		if err := a.ApplyVector(vecs.Bits[i]); err != nil {
			return err
		}
		if err := b.ApplyVector(vecs.Bits[i]); err != nil {
			return err
		}
		for id := range c.Nets {
			nid := circuit.NetID(id)
			if a.Final(nid) != b.Final(nid) {
				return fmt.Errorf("vector %d: net %s settles differently after elimination",
					i, c.Nets[id].Name)
			}
		}
	}
	return nil
}
