package harness

import (
	"fmt"
	"time"

	"udsim/internal/activity"
	"udsim/internal/fault"
	"udsim/internal/gen"
	"udsim/internal/ndsim"
	"udsim/internal/parsim"
	"udsim/internal/pcset"
	"udsim/internal/scoap"
	"udsim/internal/texttable"
)

// FaultCoverage grades the full single-stuck-at fault universe of every
// circuit against the random vector stream using 63-way parallel fault
// simulation, and correlates the misses with SCOAP testability — an
// extension experiment showing what the compiled lanes are for.
func FaultCoverage(o Options) (*Result, error) {
	o = o.withDefaults()
	nvec := o.Vectors
	if nvec > 1024 {
		nvec = 1024 // coverage saturates long before 5000
	}
	t := texttable.New(
		fmt.Sprintf("Fault coverage — %d random vectors, 63 faults/pass", nvec),
		"Circuit", "Faults", "Detected", "Coverage", "MeanSCOAP det", "MeanSCOAP undet", "Time")
	for _, name := range o.Circuits {
		c, err := gen.ISCAS85(name)
		if err != nil {
			return nil, err
		}
		fs, err := fault.New(c)
		if err != nil {
			return nil, err
		}
		cn := fs.Circuit()
		sc, err := scoap.Analyze(cn)
		if err != nil {
			return nil, err
		}
		faults := fault.AllFaults(cn)
		vecs := VectorsFor(Options{Vectors: nvec, Seed: o.Seed}, len(cn.Inputs))
		start := time.Now()
		res, err := fs.Run(faults, vecs.Bits)
		if err != nil {
			return nil, err
		}
		el := time.Since(start)
		mean := func(fs []fault.Fault) string {
			var s float64
			n := 0
			for _, f := range fs {
				cst := sc.Testability(f.Net, f.Kind == fault.StuckAt1)
				if cst >= scoap.Infinity {
					continue
				}
				s += float64(cst)
				n++
			}
			if n == 0 {
				return "-"
			}
			return fmt.Sprintf("%.0f", s/float64(n))
		}
		var det []fault.Fault
		for f := range res.Detected {
			det = append(det, f)
		}
		t.Add(name, len(faults), len(res.Detected),
			fmt.Sprintf("%.1f%%", 100*res.Coverage()),
			mean(det), mean(res.Undetected), secs(el))
	}
	return &Result{Table: t, Notes: []string{
		"extension: parallel stuck-at fault simulation over the LCC lanes; SCOAP",
		"testability (higher = harder) explains which faults random patterns miss",
	}}, nil
}

// Activity profiles switching activity under the unit-delay model and
// reports the glitch share — the transitions a zero-delay power estimate
// misses. The deep multiplier's glitch-heavy carry chains stand out.
func Activity(o Options) (*Result, error) {
	o = o.withDefaults()
	nvec := o.Vectors
	if nvec > 1000 {
		nvec = 1000
	}
	t := texttable.New(
		fmt.Sprintf("Switching activity — %d random vectors (unit delay)", nvec),
		"Circuit", "Toggles", "PerNetVec", "Glitch%")
	for _, name := range o.Circuits {
		c, err := gen.ISCAS85(name)
		if err != nil {
			return nil, err
		}
		vecs := VectorsFor(Options{Vectors: nvec, Seed: o.Seed}, len(c.Inputs))
		rep, err := activity.Profile(c, vecs.Bits, parsim.Config{WordBits: o.WordBits})
		if err != nil {
			return nil, err
		}
		perNV := float64(rep.TotalToggles()) / float64(int64(nvec)*int64(rep.C.NumNets()))
		t.Add(name, rep.TotalToggles(), fmt.Sprintf("%.2f", perNV),
			fmt.Sprintf("%.1f", 100*rep.GlitchFraction()))
	}
	return &Result{Table: t, Notes: []string{
		"extension: per-net toggle counting via XOR/popcount over parallel-technique bit-fields",
	}}, nil
}

// Timing compares unit-delay against nominal-delay event simulation (the
// paper's "more accurate timing models" future work): total committed
// events and settling times under three delay models.
func Timing(o Options) (*Result, error) {
	o = o.withDefaults()
	nvec := o.Vectors
	if nvec > 1000 {
		nvec = 1000
	}
	t := texttable.New(
		fmt.Sprintf("Timing-model study — %d random vectors, event counts + compiled nominal PC-set", nvec),
		"Circuit", "UnitEvents", "FaninEvents", "TypeEvents", "MaxSettle(type)", "ndsim(type)", "pcset(type)", "parallel(type)")
	for _, name := range o.Circuits {
		c, err := gen.ISCAS85(name)
		if err != nil {
			return nil, err
		}
		var cells []string
		maxSettle := 0
		for _, dm := range []ndsim.DelayModel{ndsim.UnitDelays, ndsim.FaninDelays, ndsim.TypeDelays} {
			s, err := ndsim.New(c, dm)
			if err != nil {
				return nil, err
			}
			if err := s.ResetConsistent(nil); err != nil {
				return nil, err
			}
			vecs := VectorsFor(Options{Vectors: nvec, Seed: o.Seed}, len(s.Circuit().Inputs))
			maxSettle = 0 // report the final (TypeDelays) model's settling
			for _, vec := range vecs.Bits {
				settle, err := s.ApplyVector(vec, nil)
				if err != nil {
					return nil, err
				}
				if settle > maxSettle {
					maxSettle = settle
				}
			}
			cells = append(cells, fmt.Sprintf("%d", s.Events))
		}
		// Timed comparison under TypeDelays: interpreted event-driven vs
		// the compiled nominal-delay PC-set program.
		norm := c.Normalize()
		delays := make([]int, norm.NumGates())
		for i := range norm.Gates {
			delays[i] = ndsim.TypeDelays(&norm.Gates[i])
		}
		ev, err := ndsim.New(norm, ndsim.TypeDelays)
		if err != nil {
			return nil, err
		}
		if err := ev.ResetConsistent(nil); err != nil {
			return nil, err
		}
		vecs := VectorsFor(Options{Vectors: nvec, Seed: o.Seed}, len(norm.Inputs))
		dEv, err := timeRun(vecs, func(vec []bool) error {
			_, err := ev.ApplyVector(vec, nil)
			return err
		})
		if err != nil {
			return nil, err
		}
		ps, err := pcset.CompileWithDelays(norm, nil, delays)
		if err != nil {
			return nil, err
		}
		if err := ps.ResetConsistent(nil); err != nil {
			return nil, err
		}
		dPs, err := timeRun(vecs, ps.ApplyVector)
		if err != nil {
			return nil, err
		}
		par, err := parsim.Compile(norm, parsim.Config{WordBits: o.WordBits, Delays: delays})
		if err != nil {
			return nil, err
		}
		if err := par.ResetConsistent(nil); err != nil {
			return nil, err
		}
		dPar, err := timeRun(vecs, par.ApplyVector)
		if err != nil {
			return nil, err
		}
		t.Add(name, cells[0], cells[1], cells[2], maxSettle, secs(dEv), secs(dPs), secs(dPar))
	}
	return &Result{Table: t, Notes: []string{
		"extension: nominal per-gate delays through the interpreted event simulator and",
		"through the compiled nominal-delay PC-set program (larger PC-sets, still queue-free);",
		"with unit delays both reproduce the paper's model exactly",
	}}, nil
}
