package harness

import (
	"fmt"
	"io"
	"time"

	"udsim/internal/codegen"
	"udsim/internal/gen"
	"udsim/internal/parsim"
	"udsim/internal/pcset"
	"udsim/internal/texttable"
	"udsim/internal/vectors"
)

// CodeSize reproduces the §3 code-volume observation: the PC-set method
// generates enormous programs (over 100 000 lines for c6288 in the
// paper), while the parallel technique generates far less. Counts are
// compiled instructions and emitted C statements.
func CodeSize(o Options) (*Result, error) {
	o = o.withDefaults()
	t := texttable.New("Code size — generated statements per technique (W=32)",
		"Circuit", "Gates", "PC-Set vars", "PC-Set stmts", "Parallel stmts", "Ratio")
	for _, name := range o.Circuits {
		c, err := gen.ISCAS85(name)
		if err != nil {
			return nil, err
		}
		ps, err := pcset.Compile(c, nil)
		if err != nil {
			return nil, err
		}
		pi, pm := ps.Programs()
		pcStmts, err := codegen.Emit(io.Discard, codegen.C, "pcset", []codegen.Unit{
			{Name: "initvec", Prog: pi}, {Name: "sim", Prog: pm},
		})
		if err != nil {
			return nil, err
		}
		par, err := parsim.Compile(c, parsim.Config{WordBits: o.WordBits})
		if err != nil {
			return nil, err
		}
		qi, qm := par.Programs()
		parStmts, err := codegen.Emit(io.Discard, codegen.C, "parallel", []codegen.Unit{
			{Name: "initvec", Prog: qi}, {Name: "sim", Prog: qm},
		})
		if err != nil {
			return nil, err
		}
		t.Add(name, c.NumGates(), ps.NumVars(), pcStmts, parStmts,
			fmt.Sprintf("%.1fx", float64(pcStmts)/float64(parStmts)))
	}
	return &Result{Table: t, Notes: []string{
		"paper: the PC-set method emitted >100k lines for c6288; the parallel technique far less",
	}}, nil
}

// DataParallel demonstrates the PC-set method's data-parallel mode (§3):
// simulating 64 independent vector streams at once through the same
// compiled code, versus one stream at a time.
func DataParallel(o Options) (*Result, error) {
	o = o.withDefaults()
	t := texttable.New(
		fmt.Sprintf("Data-parallel PC-set — %d vectors scalar vs 64-lane", o.Vectors),
		"Circuit", "Scalar", "64-lane", "Throughput")
	for _, name := range o.Circuits {
		c, vecs, err := bench(o, name)
		if err != nil {
			return nil, err
		}
		s, err := pcset.Compile(c, nil)
		if err != nil {
			return nil, err
		}
		dScalar, err := bestOf(o.Repeats, func() error { return s.ResetConsistent(nil) }, vecs, s.ApplyVector)
		if err != nil {
			return nil, err
		}
		// Lane mode: the same number of vectors, 64 per pass. Each lane
		// is an independent stream, which is the natural data-parallel
		// workload (e.g. 64 random test sequences at once).
		packed := vecs.Packed()
		var dLanes time.Duration
		for r := 0; r < o.Repeats; r++ {
			if err := s.ResetConsistent(nil); err != nil {
				return nil, err
			}
			start := time.Now()
			for _, lane := range packed {
				if err := s.ApplyLanes(lane); err != nil {
					return nil, err
				}
			}
			if d := time.Since(start); r == 0 || d < dLanes {
				dLanes = d
			}
		}
		t.Add(name, secs(dScalar), secs(dLanes), ratio(dScalar, dLanes))
	}
	return &Result{Table: t, Notes: []string{
		"§3: the PC-set method is amenable to bit-parallel simulation of multiple input",
		"vectors; the parallel technique is not (its bit positions encode time)",
	}}, nil
}

// VectorsFor exposes the harness's seeded vector stream for external
// drivers (cmd/udsim uses it for ad-hoc runs).
func VectorsFor(o Options, inputs int) *vectors.Set {
	o = o.withDefaults()
	return vectors.Random(o.Vectors, inputs, o.Seed)
}
