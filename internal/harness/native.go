package harness

import (
	"fmt"
	"os/exec"
	"time"

	"udsim/internal/native"
	"udsim/internal/parsim"
	"udsim/internal/pcset"
	"udsim/internal/resilience"
	"udsim/internal/texttable"
	"udsim/internal/vectors"
)

// nativeBatch is the vector-batch size the experiment streams through
// the child protocol: large enough to amortize the pipe round trip,
// small enough that a respawn replays a bounded amount of work.
const nativeBatch = 512

// Native measures the interpretation tax: the in-process dispatch loop
// (threaded code interpreting the compiled program) against the same
// program built as genuinely straight-line native code and run in a
// supervised child over the vector protocol. One row per circuit and
// technique, with the out-of-process `go build` time that the native
// backend pays once per open.
func Native(o Options) (*Result, error) {
	o = o.withDefaults()
	t := texttable.New(
		fmt.Sprintf("Native backend — dispatch loop vs native child (%d vectors)", o.Vectors),
		"Circuit", "Technique", "Build", "Loop ns/vec", "Native ns/vec", "Loop/Native")
	if _, err := exec.LookPath("go"); err != nil {
		return &Result{Table: t, Notes: []string{
			"go toolchain not on PATH: native child cannot be built, experiment skipped",
		}}, nil
	}
	for _, name := range o.Circuits {
		c, vecs, err := bench(o, name)
		if err != nil {
			return nil, err
		}
		norm := c.Normalize()
		for _, tech := range []string{"parallel", "pcset"} {
			var (
				cfg   native.Config
				dLoop time.Duration
			)
			switch tech {
			case "parallel":
				s, err := parsim.Compile(norm, parsim.Config{WordBits: o.WordBits})
				if err != nil {
					return nil, err
				}
				dLoop, err = bestOf(o.Repeats, func() error { return s.ResetConsistent(nil) }, vecs, s.ApplyVector)
				if err != nil {
					return nil, err
				}
				pi, pm := s.Programs()
				cfg = native.Config{
					Layout: native.ParallelLayout(s, norm),
					Init:   pi, Sim: pm,
				}
			case "pcset":
				s, err := pcset.Compile(norm, nil)
				if err != nil {
					return nil, err
				}
				dLoop, err = bestOf(o.Repeats, func() error { return s.ResetConsistent(nil) }, vecs, s.ApplyVector)
				if err != nil {
					return nil, err
				}
				pi, pm := s.Programs()
				cfg = native.Config{
					Layout: native.PCSetLayout(s, norm),
					Init:   pi, Sim: pm,
				}
			}
			cfg.Engine = "native/" + tech
			cfg.Technique = tech
			cfg.CircuitHash = native.HashBench(norm)
			cfg.Policy = resilience.Policy{
				LevelBudget:  5 * time.Second,
				MaxRetries:   2,
				RetryBackoff: 10 * time.Millisecond,
			}
			sup, err := native.New(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, tech, err)
			}
			dNative, err := timeNative(sup, vecs, o.Repeats)
			sup.Close()
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, tech, err)
			}
			t.Add(name, tech, secs(sup.BuildTime()),
				nsPerVec(dLoop, vecs.Len()), nsPerVec(dNative, vecs.Len()),
				ratio(dLoop, dNative))
		}
	}
	return &Result{Table: t, Notes: []string{
		"Loop/Native > 1x is the dispatch loop's interpretation tax; the native column",
		"includes the pipe protocol, so small circuits understate the pure compute gap.",
		"Build is the one-time out-of-process `go build` of the generated child.",
	}}, nil
}

// timeNative streams the vector set through the supervised child in
// nativeBatch-sized batches, best of `repeats` passes.
func timeNative(sup *native.Supervisor, vecs *vectors.Set, repeats int) (time.Duration, error) {
	if repeats < 1 {
		repeats = 1
	}
	var best time.Duration
	for r := 0; r < repeats; r++ {
		start := time.Now()
		for lo := 0; lo < vecs.Len(); lo += nativeBatch {
			hi := lo + nativeBatch
			if hi > vecs.Len() {
				hi = vecs.Len()
			}
			if _, err := sup.RunBatch(vecs.Bits[lo:hi]); err != nil {
				return 0, err
			}
		}
		d := time.Since(start)
		if r == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// nsPerVec renders a per-vector duration in nanoseconds.
func nsPerVec(d time.Duration, n int) string {
	if n <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", float64(d.Nanoseconds())/float64(n))
}
