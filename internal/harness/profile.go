package harness

import (
	"fmt"
	"io"
	"strings"

	"udsim"
	"udsim/internal/texttable"
)

// ObsReport is the rendered runtime-observability profile of one
// circuit: per-level heat, per-worker utilization, and the unit-delay
// activity summary, all derived from a single observed stream.
type ObsReport struct {
	Circuit  string
	Snapshot *udsim.Snapshot
	Levels   *texttable.Table
	Workers  *texttable.Table
	Notes    []string
}

// String renders the report's tables and notes.
func (r *ObsReport) String() string {
	var b strings.Builder
	b.WriteString(r.Levels.String())
	b.WriteString("\n")
	b.WriteString(r.Workers.String())
	for _, n := range r.Notes {
		b.WriteString("  " + n + "\n")
	}
	return b.String()
}

// WriteText writes the snapshot as Prometheus-style text exposition —
// the machine-readable twin of String.
func (r *ObsReport) WriteText(w io.Writer) error { return r.Snapshot.WriteText(w) }

// heatBar renders v/max as a bar of up to width '#' characters (ASCII
// so texttable's byte-width alignment holds).
func heatBar(v, max int64, width int) string {
	if max <= 0 || v <= 0 {
		return ""
	}
	n := int(int64(width) * v / max)
	if n == 0 {
		n = 1
	}
	return strings.Repeat("#", n)
}

func ms(nanos int64) string { return fmt.Sprintf("%.2f", float64(nanos)/1e6) }

// ObsProfile streams the circuit's vectors through the sharded parallel
// engine with an activity-enabled observer attached and renders the
// per-level heat profile. workers <= 0 means GOMAXPROCS.
func ObsProfile(o Options, name string, workers int) (*ObsReport, error) {
	o = o.withDefaults()
	c, vecs, err := bench(o, name)
	if err != nil {
		return nil, err
	}
	ob := udsim.NewObserver(udsim.ObserverConfig{Activity: true})
	e, err := udsim.Open(c, udsim.TechParallel,
		udsim.WithWordBits(o.WordBits),
		udsim.WithExec(udsim.ExecSharded, workers),
		udsim.WithObserver(ob))
	if err != nil {
		return nil, err
	}
	se, ok := e.(streamEngine)
	if !ok {
		return nil, fmt.Errorf("harness: %s engine cannot stream", e.EngineName())
	}
	defer se.Close()
	if err := se.ResetConsistent(nil); err != nil {
		return nil, err
	}
	if err := se.ApplyStream(vecs.Bits); err != nil {
		return nil, err
	}
	s := se.Snapshot()
	if s == nil || s.Vectors == 0 {
		return nil, fmt.Errorf("harness: observer saw no vectors")
	}

	lt := texttable.New(
		fmt.Sprintf("%s — per-level heat (%d vectors, %d workers)", name, s.Vectors, s.Workers),
		"Level", "Instrs", "Time ms", "Share", "Util", "Heat")
	var totalNanos, maxNanos int64
	for l := range s.Level {
		n := s.Level[l].Nanos()
		totalNanos += n
		if n > maxNanos {
			maxNanos = n
		}
	}
	for l := range s.Level {
		n := s.Level[l].Nanos()
		share := 0.0
		if totalNanos > 0 {
			share = 100 * float64(n) / float64(totalNanos)
		}
		lt.Add(l, s.Level[l].Instrs(), ms(n),
			fmt.Sprintf("%.1f%%", share),
			fmt.Sprintf("%.2f", s.Level[l].Utilization()),
			heatBar(n, maxNanos, 30))
	}

	wt := texttable.New(fmt.Sprintf("%s — per-worker utilization", name),
		"Worker", "Busy ms", "Wait ms", "Instrs", "Busy%")
	for w := range s.Worker {
		busy, wait := s.Worker[w].BusyNanos, s.Worker[w].WaitNanos
		pct := 0.0
		if busy+wait > 0 {
			pct = 100 * float64(busy) / float64(busy+wait)
		}
		wt.Add(w, ms(busy), ms(wait), s.Worker[w].Instrs, fmt.Sprintf("%.1f%%", pct))
	}

	peak, peakT := int64(0), 0
	for t, v := range s.Steps {
		if v > peak {
			peak, peakT = v, t
		}
	}
	notes := []string{
		fmt.Sprintf("throughput %.0f vectors/s, mean shard utilization %.2f, barrier wait %s ms",
			s.VectorsPerSec(), s.MeanUtilization(), ms(s.BarrierWaitNanos())),
		fmt.Sprintf("activity: %d toggles, %d glitches over %d vectors; peak %d changes at t=%d",
			s.TotalToggles(), s.TotalGlitches(), s.ActivityVectors, peak, peakT),
	}
	return &ObsReport{Circuit: name, Snapshot: s, Levels: lt, Workers: wt, Notes: notes}, nil
}
