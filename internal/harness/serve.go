package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"udsim"
	"udsim/internal/serve"
	"udsim/internal/texttable"
	"udsim/internal/vectors"
)

// Serve load-tests the multi-tenant simulation service: one udserve
// instance, N concurrent clients per circuit all streaming vector
// batches over real HTTP. The experiment checks the service's two core
// claims — compile-once (the compiles counter equals the number of
// distinct configurations no matter how many clients race on them) and
// bit-identity (every batch's output digest matches a direct in-process
// engine run) — and reports the multi-tenant throughput.
func Serve(o Options) (*Result, error) {
	o = o.withDefaults()
	clients := serveClients()
	res, err := runServeLoad(o, clients)
	if err != nil {
		return nil, err
	}
	t := texttable.New(
		fmt.Sprintf("Multi-tenant service — %d clients/circuit, %d vectors each over HTTP", clients, o.Vectors),
		"Circuit", "Batches", "Vectors", "Identical", "Vec/s")
	for _, r := range res.Rows {
		ident := "yes"
		if !r.Identical {
			ident = "NO"
		}
		t.Add(r.Circuit, fmt.Sprint(r.Batches), fmt.Sprint(r.Vectors), ident,
			fmt.Sprintf("%.0f", r.VectorsPerSecond))
	}
	st := res.Stats
	notes := []string{
		fmt.Sprintf("compiles=%d (one per circuit: singleflight held under %d racing clients), cache hits=%d misses=%d",
			st.Compiles, clients, st.CacheHits, st.CacheMisses),
		fmt.Sprintf("pool peak=%d (bound %d), pool waits=%d, rejected=%d",
			st.PoolPeak, res.PoolBound, st.PoolWaits, st.Rejected()),
	}
	if st.Compiles != int64(len(res.Rows)) {
		return nil, fmt.Errorf("harness: serve compiled %d programs for %d circuits — the cache failed its compile-once contract",
			st.Compiles, len(res.Rows))
	}
	for _, r := range res.Rows {
		if !r.Identical {
			return nil, fmt.Errorf("harness: serve outputs for %s diverged from the direct engine run", r.Circuit)
		}
	}
	return &Result{Table: t, Notes: notes}, nil
}

// serveClients picks the client fan-out: enough to race the
// singleflight and oversubscribe the engine pool.
func serveClients() int {
	n := runtime.GOMAXPROCS(0)
	if n < 4 {
		n = 4
	}
	return n
}

// serveRow is one circuit's client-side outcome.
type serveRow struct {
	Circuit          string
	Batches          int64
	Vectors          int64
	Identical        bool
	VectorsPerSecond float64
}

// serveLoadResult is the full load-test outcome.
type serveLoadResult struct {
	Rows      []serveRow
	Stats     serve.Stats
	PoolBound int
}

// runServeLoad starts the service over HTTP and drives the client fleet.
func runServeLoad(o Options, clients int) (*serveLoadResult, error) {
	const poolBound = 4
	srv := serve.New(serve.Config{
		PoolBound:  poolBound,
		QueueDepth: clients * len(o.Circuits) * 2, // admission is not under test here
	})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(ctx)
	}()

	res := &serveLoadResult{PoolBound: poolBound}
	for _, name := range o.Circuits {
		row, err := serveOneCircuit(o, hs.Client(), hs.URL, name, clients)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, *row)
	}
	res.Stats = srv.Stats()
	return res, nil
}

// serveOneCircuit fans clients out on one circuit and checks digests.
func serveOneCircuit(o Options, hc *http.Client, base, name string, clients int) (*serveRow, error) {
	c, vecs, err := bench(o, name)
	if err != nil {
		return nil, err
	}
	want, err := referenceDigest(c, vecs)
	if err != nil {
		return nil, err
	}
	body := vecs.Bits
	lines := make([]string, len(body))
	for i, v := range body {
		b := make([]byte, len(v))
		for j, bit := range v {
			if bit {
				b[j] = '1'
			} else {
				b[j] = '0'
			}
		}
		lines[i] = string(b)
	}
	// Each client splits the stream into batches so pool checkout and
	// release churn under contention.
	batch := len(lines) / 8
	if batch < 1 {
		batch = 1
	}
	var (
		wg        sync.WaitGroup
		batches   atomic.Int64
		nvec      atomic.Int64
		identical atomic.Bool
		firstErr  atomic.Value
	)
	identical.Store(true)
	start := time.Now()
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			for lo := 0; lo < len(lines); lo += batch {
				hi := lo + batch
				if hi > len(lines) {
					hi = len(lines)
				}
				chunk := lines[lo:hi]
				digest, err := postBatch(hc, base, tenant, name, chunk)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				// Verify against the reference digest of the same chunk.
				if digest != want[lo/batch] {
					identical.Store(false)
				}
				batches.Add(1)
				nvec.Add(int64(len(chunk)))
			}
		}(fmt.Sprintf("client-%d", cl))
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, err
	}
	el := time.Since(start).Seconds()
	return &serveRow{
		Circuit:          name,
		Batches:          batches.Load(),
		Vectors:          nvec.Load(),
		Identical:        identical.Load(),
		VectorsPerSecond: float64(nvec.Load()) / el,
	}, nil
}

// postBatch runs one digest-only batch over HTTP and returns the digest.
func postBatch(hc *http.Client, base, tenant, gen string, vecs []string) (string, error) {
	req := map[string]any{"gen": gen, "vectors": vecs, "digest_only": true}
	buf, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	hr, err := http.NewRequest(http.MethodPost, base+"/v1/batches", bytes.NewReader(buf))
	if err != nil {
		return "", err
	}
	hr.Header.Set("X-Tenant-ID", tenant)
	resp, err := hc.Do(hr)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("harness: serve: %s: %s", resp.Status, bytes.TrimSpace(raw))
	}
	var br struct {
		Digest string `json:"digest"`
	}
	if err := json.Unmarshal(raw, &br); err != nil {
		return "", err
	}
	return br.Digest, nil
}

// referenceDigest computes the expected FNV-1a digest of every 1/8th
// chunk of the stream with a direct in-process engine — the oracle the
// HTTP responses must match bit for bit.
func referenceDigest(c *udsim.Circuit, vecs *vectors.Set) ([]string, error) {
	e, err := udsim.Open(c, udsim.TechParallel)
	if err != nil {
		return nil, err
	}
	if cl, ok := e.(udsim.Closer); ok {
		defer cl.Close()
	}
	batch := len(vecs.Bits) / 8
	if batch < 1 {
		batch = 1
	}
	var out []string
	buf := make([]byte, len(c.Outputs))
	for lo := 0; lo < len(vecs.Bits); lo += batch {
		hi := lo + batch
		if hi > len(vecs.Bits) {
			hi = len(vecs.Bits)
		}
		// Batches are independent: the service resets to the all-zeros
		// consistent state at every batch boundary, so the oracle must too.
		if err := e.ResetConsistent(nil); err != nil {
			return nil, err
		}
		d := fnv.New64a()
		for _, v := range vecs.Bits[lo:hi] {
			if err := e.Apply(v); err != nil {
				return nil, err
			}
			for i, o := range c.Outputs {
				if e.Final(o) {
					buf[i] = '1'
				} else {
					buf[i] = '0'
				}
			}
			d.Write(buf)
		}
		out = append(out, fmt.Sprintf("%016x", d.Sum64()))
	}
	return out, nil
}

// ServeMatrix runs the service load test and renders it in the bench
// file schema — the `udbench -json FILE -exp serve` baseline.
func ServeMatrix(o Options, rev string, workersList []int) (*BenchFile, error) {
	o = o.withDefaults()
	clients := serveClients()
	if len(workersList) > 0 {
		clients = workersList[0]
	}
	res, err := runServeLoad(o, clients)
	if err != nil {
		return nil, err
	}
	st := res.Stats
	file := &BenchFile{
		Schema:     BenchSchema,
		Revision:   rev,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		WordBits:   o.WordBits,
		Vectors:    o.Vectors,
	}
	for _, r := range res.Rows {
		file.Records = append(file.Records, BenchRecord{
			Circuit:               r.Circuit,
			Technique:             "parallel",
			Strategy:              "serve",
			Workers:               clients,
			NsPerVector:           1e9 / r.VectorsPerSecond,
			ServeBatches:          r.Batches,
			ServeVectorsPerSecond: r.VectorsPerSecond,
			ServeCacheHits:        st.CacheHits,
			ServeCompiles:         st.Compiles,
			ServePoolPeak:         st.PoolPeak,
			ServeRejected:         st.Rejected(),
			ServeIdenticalOutputs: r.Identical,
		})
	}
	return file, nil
}
