package harness

import (
	"bytes"
	"strings"
	"testing"
)

// quick runs experiments at a small scale on two small circuits.
func quick() Options {
	return Options{
		Circuits: []string{"c432", "c499"},
		Vectors:  40,
		Seed:     7,
		WordBits: 32,
	}
}

func TestAllExperimentsRun(t *testing.T) {
	var buf bytes.Buffer
	if err := All(quick(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig. 19", "Fig. 20", "Fig. 21", "Fig. 22",
		"Fig. 23", "Fig. 24", "Zero-delay", "Code size", "Data-parallel",
		"Fault coverage", "Switching activity", "Timing-model"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if !strings.Contains(out, "c432") || !strings.Contains(out, "c499") {
		t.Error("circuit rows missing")
	}
}

func TestRunByName(t *testing.T) {
	r, err := Run("fig21", quick())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.String(), "Path-Tracing") {
		t.Errorf("unexpected fig21 output:\n%s", r)
	}
	if _, err := Run("fig99", quick()); err == nil {
		t.Error("expected unknown-experiment error")
	}
}

func TestFig21ShapeOnDeepCircuit(t *testing.T) {
	// On the c6288 profile (a real multiplier), both algorithms must
	// retain far fewer shifts than one per gate — the essence of
	// Fig. 21's shape.
	o := Options{Circuits: []string{"c6288"}, Vectors: 1}
	r, err := Fig21(o)
	if err != nil {
		t.Fatal(err)
	}
	row := r.Table.Rows[0]
	gates := atoiOrFail(t, row[1])
	pt := atoiOrFail(t, row[2])
	cb := atoiOrFail(t, row[3])
	if pt >= gates {
		t.Errorf("path tracing retained %d shifts on %d gates", pt, gates)
	}
	if cb >= gates {
		t.Errorf("cycle breaking retained %d shifts on %d gates", cb, gates)
	}
	t.Logf("c6288: gates=%d path-trace=%d cycle-break=%d", gates, pt, cb)
}

func TestFig22PathTracingNeverWider(t *testing.T) {
	o := Options{Vectors: 1} // all circuits; static analysis only
	r, err := Fig22(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Table.Rows {
		unopt := atoiOrFail(t, row[1])
		pt := atoiOrFail(t, row[2])
		if pt > unopt {
			t.Errorf("%s: path tracing widened field: %d > %d", row[0], pt, unopt)
		}
	}
}

func TestCodeSizeShape(t *testing.T) {
	// The PC-set method must generate more code than the parallel
	// technique on the deep multiplier profile, dramatically so.
	o := Options{Circuits: []string{"c6288"}, Vectors: 1}
	r, err := CodeSize(o)
	if err != nil {
		t.Fatal(err)
	}
	row := r.Table.Rows[0]
	pcStmts := atoiOrFail(t, row[3])
	parStmts := atoiOrFail(t, row[4])
	if pcStmts <= parStmts {
		t.Errorf("PC-set stmts %d not larger than parallel %d", pcStmts, parStmts)
	}
	t.Logf("c6288 code size: pcset=%d parallel=%d", pcStmts, parStmts)
}

func atoiOrFail(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			t.Fatalf("not a number: %q", s)
		}
		n = n*10 + int(r-'0')
	}
	return n
}

func TestDefaultsApplied(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Vectors != 5000 || o.WordBits != 32 || len(o.Circuits) != 10 {
		t.Errorf("defaults wrong: %+v", o)
	}
}
