// Package harness drives the paper's experiments end to end: it
// synthesizes the benchmark circuits, compiles every simulation engine,
// replays the same seeded random vector streams through each, and renders
// the tables of Figs. 19–24 plus the zero-delay and code-size side
// studies. The cmd/udbench binary and the repository's testing.B
// benchmarks are both thin wrappers around this package.
package harness

import (
	"fmt"
	"io"
	"time"

	"udsim/internal/align"
	"udsim/internal/circuit"
	"udsim/internal/eventsim"
	"udsim/internal/gen"
	"udsim/internal/lcc"
	"udsim/internal/levelize"
	"udsim/internal/parsim"
	"udsim/internal/pcset"
	"udsim/internal/texttable"
	"udsim/internal/vectors"
)

// Options configures an experiment run.
type Options struct {
	// Circuits lists benchmark names (default: all ten ISCAS-85
	// profiles in the paper's order).
	Circuits []string
	// Vectors is the number of random vectors per circuit (the paper
	// used 5 000).
	Vectors int
	// Seed feeds the vector generator.
	Seed int64
	// WordBits is the parallel technique's logical word width (the
	// paper's machine had 32-bit words).
	WordBits int
	// Repeats is the number of timing repetitions; the fastest run is
	// reported (the paper averaged five /bin/time trials for the same
	// reason: to suppress interference).
	Repeats int
}

// withDefaults fills in the paper's parameters.
func (o Options) withDefaults() Options {
	if len(o.Circuits) == 0 {
		o.Circuits = gen.Names()
	}
	if o.Vectors == 0 {
		o.Vectors = 5000
	}
	if o.Seed == 0 {
		o.Seed = 1990
	}
	if o.WordBits == 0 {
		o.WordBits = 32
	}
	if o.Repeats == 0 {
		o.Repeats = 3
	}
	return o
}

// Result is one reproduced table plus free-form notes.
type Result struct {
	Table *texttable.Table
	Notes []string
}

// String renders the result.
func (r *Result) String() string {
	s := r.Table.String()
	for _, n := range r.Notes {
		s += "  " + n + "\n"
	}
	return s
}

// bench loads a circuit and its vector stream.
func bench(o Options, name string) (*circuit.Circuit, *vectors.Set, error) {
	c, err := gen.ISCAS85(name)
	if err != nil {
		return nil, nil, err
	}
	vecs := vectors.Random(o.Vectors, len(c.Inputs), o.Seed)
	return c, vecs, nil
}

// timeRun measures the wall time of simulating every vector through run,
// excluding setup.
func timeRun(vecs *vectors.Set, run func(vec []bool) error) (time.Duration, error) {
	start := time.Now()
	for _, vec := range vecs.Bits {
		if err := run(vec); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

func secs(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }

// Fig19 reproduces the headline comparison: interpreted event-driven
// simulation (three- and two-valued) against the PC-set method and the
// unoptimized parallel technique.
func Fig19(o Options) (*Result, error) {
	o = o.withDefaults()
	t := texttable.New(
		fmt.Sprintf("Fig. 19 — simulation time in seconds (%d random vectors)", o.Vectors),
		"Circuit", "Interp3v", "Interp2v", "PC-Set", "Parallel", "PCvs3v", "PARvs3v")
	var s3, s2, sp, sq float64
	for _, name := range o.Circuits {
		c, vecs, err := bench(o, name)
		if err != nil {
			return nil, err
		}
		d3, err := runEvent(c, vecs, eventsim.ThreeValued, o.Repeats)
		if err != nil {
			return nil, err
		}
		d2, err := runEvent(c, vecs, eventsim.TwoValued, o.Repeats)
		if err != nil {
			return nil, err
		}
		dp, err := runPCSet(c, vecs, o.Repeats)
		if err != nil {
			return nil, err
		}
		dq, err := runParallel(c, vecs, parsim.Config{WordBits: o.WordBits}, o.Repeats)
		if err != nil {
			return nil, err
		}
		t.Add(name, secs(d3), secs(d2), secs(dp), secs(dq),
			ratio(d3, dp), ratio(d3, dq))
		s3 += d3.Seconds()
		s2 += d2.Seconds()
		sp += dp.Seconds()
		sq += dq.Seconds()
	}
	t.Add("TOTAL", fmt.Sprintf("%.3f", s3), fmt.Sprintf("%.3f", s2),
		fmt.Sprintf("%.3f", sp), fmt.Sprintf("%.3f", sq),
		fmt.Sprintf("%.1fx", s3/sp), fmt.Sprintf("%.1fx", s3/sq))
	return &Result{Table: t, Notes: []string{
		"paper: PC-set ≈ 4x faster than interpreted 3-valued, parallel ≈ 10x",
	}}, nil
}

func ratio(base, x time.Duration) string {
	if x <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", base.Seconds()/x.Seconds())
}

func runEvent(c *circuit.Circuit, vecs *vectors.Set, m eventsim.Model, repeats int) (time.Duration, error) {
	s, err := eventsim.New(c, m)
	if err != nil {
		return 0, err
	}
	return bestOf(repeats, func() error { return s.ResetConsistent(nil) }, vecs,
		func(vec []bool) error {
			_, err := s.ApplyVector(vec)
			return err
		})
}

// bestOf times the vector stream `repeats` times from a fresh consistent
// state and returns the fastest run.
func bestOf(repeats int, reset func() error, vecs *vectors.Set, run func(vec []bool) error) (time.Duration, error) {
	if repeats < 1 {
		repeats = 1
	}
	var best time.Duration
	for r := 0; r < repeats; r++ {
		if err := reset(); err != nil {
			return 0, err
		}
		d, err := timeRun(vecs, run)
		if err != nil {
			return 0, err
		}
		if r == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

func runPCSet(c *circuit.Circuit, vecs *vectors.Set, repeats int) (time.Duration, error) {
	s, err := pcset.Compile(c, nil)
	if err != nil {
		return 0, err
	}
	return bestOf(repeats, func() error { return s.ResetConsistent(nil) }, vecs, s.ApplyVector)
}

func runParallel(c *circuit.Circuit, vecs *vectors.Set, cfg parsim.Config, repeats int) (time.Duration, error) {
	s, err := parsim.Compile(c, cfg)
	if err != nil {
		return 0, err
	}
	return bestOf(repeats, func() error { return s.ResetConsistent(nil) }, vecs, s.ApplyVector)
}

// alignedConfig prepares a shift-eliminated configuration for a circuit.
func alignedConfig(c *circuit.Circuit, method align.Method, wordBits int, trim bool) (*circuit.Circuit, parsim.Config, *align.Result, error) {
	norm, a, err := parsim.Analyze(c)
	if err != nil {
		return nil, parsim.Config{}, nil, err
	}
	var res *align.Result
	switch method {
	case align.MethodPathTrace:
		res = align.PathTrace(a)
	case align.MethodCycleBreak:
		res = align.CycleBreak(a)
	case align.MethodUnoptimized:
		res = align.Unoptimized(a)
		return norm, parsim.Config{WordBits: wordBits, Trim: trim}, res, nil
	}
	if err := res.Validate(); err != nil {
		return nil, parsim.Config{}, nil, err
	}
	return norm, parsim.Config{WordBits: wordBits, Trim: trim, Align: res}, res, nil
}

// Fig20 reproduces the bit-field trimming study: levels (words per
// field) and run time without and with trimming.
func Fig20(o Options) (*Result, error) {
	o = o.withDefaults()
	t := texttable.New(
		fmt.Sprintf("Fig. 20 — bit-field trimming (%d vectors, W=%d)", o.Vectors, o.WordBits),
		"Circuit", "Levels", "Words", "Parallel", "Trimmed", "Gain")
	for _, name := range o.Circuits {
		c, vecs, err := bench(o, name)
		if err != nil {
			return nil, err
		}
		a, err := levelize.Analyze(c.Normalize())
		if err != nil {
			return nil, err
		}
		levels := a.Depth + 1
		words := (levels + o.WordBits - 1) / o.WordBits
		dPlain, err := runParallel(c, vecs, parsim.Config{WordBits: o.WordBits}, o.Repeats)
		if err != nil {
			return nil, err
		}
		dTrim, err := runParallel(c, vecs, parsim.Config{WordBits: o.WordBits, Trim: true}, o.Repeats)
		if err != nil {
			return nil, err
		}
		gain := 100 * (1 - dTrim.Seconds()/dPlain.Seconds())
		t.Add(name, fmt.Sprintf("%d(%d)", levels, words), words,
			secs(dPlain), secs(dTrim), fmt.Sprintf("%+.0f%%", gain))
	}
	return &Result{Table: t, Notes: []string{
		"paper: 20-36% improvement on multi-word circuits, none on single-word",
	}}, nil
}

// Fig21 reproduces the retained-shift counts for the unoptimized layout
// and both shift-elimination algorithms. Purely static analysis.
func Fig21(o Options) (*Result, error) {
	o = o.withDefaults()
	t := texttable.New("Fig. 21 — retained shifts",
		"Circuit", "Unoptimized", "Path-Tracing", "Cycle-Breaking")
	for _, name := range o.Circuits {
		c, err := gen.ISCAS85(name)
		if err != nil {
			return nil, err
		}
		norm, a, err := parsim.Analyze(c)
		if err != nil {
			return nil, err
		}
		_ = norm
		pt := align.PathTrace(a)
		cb := align.CycleBreak(a)
		t.Add(name, c.NumGates(), pt.RetainedShifts(), cb.RetainedShifts())
	}
	return &Result{Table: t, Notes: []string{
		"unoptimized column = one shift per gate (the paper's Fig. 21 col 1 equals the gate count)",
	}}, nil
}

// Fig22 reproduces the bit-field width comparison between the two
// shift-elimination algorithms.
func Fig22(o Options) (*Result, error) {
	o = o.withDefaults()
	t := texttable.New("Fig. 22 — maximum bit-field widths (bits / 32-bit words)",
		"Circuit", "Unoptimized", "Path-Tracing", "Cycle-Breaking", "PT words", "CB words")
	for _, name := range o.Circuits {
		c, err := gen.ISCAS85(name)
		if err != nil {
			return nil, err
		}
		_, a, err := parsim.Analyze(c)
		if err != nil {
			return nil, err
		}
		pt := align.PathTrace(a)
		cb := align.CycleBreak(a)
		wordsOf := func(bits int) int { return (bits + o.WordBits - 1) / o.WordBits }
		t.Add(name, a.Depth+1, pt.MaxWidthBits(), cb.MaxWidthBits(),
			wordsOf(pt.MaxWidthBits()), wordsOf(cb.MaxWidthBits()))
	}
	return &Result{Table: t, Notes: []string{
		"paper: path tracing never expands widths (sometimes shrinks); cycle breaking expands them badly",
	}}, nil
}

// Fig23 reproduces the shift-elimination timing comparison.
func Fig23(o Options) (*Result, error) {
	o = o.withDefaults()
	t := texttable.New(
		fmt.Sprintf("Fig. 23 — shift elimination (%d vectors, W=%d)", o.Vectors, o.WordBits),
		"Circuit", "Unoptimized", "Path-Tracing", "Cycle-Breaking", "PT gain")
	for _, name := range o.Circuits {
		c, vecs, err := bench(o, name)
		if err != nil {
			return nil, err
		}
		dU, err := runParallel(c, vecs, parsim.Config{WordBits: o.WordBits}, o.Repeats)
		if err != nil {
			return nil, err
		}
		norm, cfgPT, _, err := alignedConfig(c, align.MethodPathTrace, o.WordBits, false)
		if err != nil {
			return nil, err
		}
		dP, err := runParallel(norm, vecs, cfgPT, o.Repeats)
		if err != nil {
			return nil, err
		}
		normC, cfgCB, _, err := alignedConfig(c, align.MethodCycleBreak, o.WordBits, false)
		if err != nil {
			return nil, err
		}
		dC, err := runParallel(normC, vecs, cfgCB, o.Repeats)
		if err != nil {
			return nil, err
		}
		gain := 100 * (1 - dP.Seconds()/dU.Seconds())
		t.Add(name, secs(dU), secs(dP), secs(dC), fmt.Sprintf("%+.0f%%", gain))
	}
	return &Result{Table: t, Notes: []string{
		"paper: path tracing gains 24-84% (avg 43%); cycle breaking loses on all but the smallest circuits",
	}}, nil
}

// Fig24 reproduces the combined optimization study: path tracing plus
// bit-field trimming.
func Fig24(o Options) (*Result, error) {
	o = o.withDefaults()
	t := texttable.New(
		fmt.Sprintf("Fig. 24 — shift elimination + trimming (%d vectors, W=%d)", o.Vectors, o.WordBits),
		"Circuit", "Unoptimized", "Path-Tracing", "With Trimming", "Gain")
	for _, name := range o.Circuits {
		c, vecs, err := bench(o, name)
		if err != nil {
			return nil, err
		}
		dU, err := runParallel(c, vecs, parsim.Config{WordBits: o.WordBits}, o.Repeats)
		if err != nil {
			return nil, err
		}
		norm, cfgPT, _, err := alignedConfig(c, align.MethodPathTrace, o.WordBits, false)
		if err != nil {
			return nil, err
		}
		dP, err := runParallel(norm, vecs, cfgPT, o.Repeats)
		if err != nil {
			return nil, err
		}
		norm2, cfgPTT, _, err := alignedConfig(c, align.MethodPathTrace, o.WordBits, true)
		if err != nil {
			return nil, err
		}
		dT, err := runParallel(norm2, vecs, cfgPTT, o.Repeats)
		if err != nil {
			return nil, err
		}
		gain := 100 * (1 - dT.Seconds()/dU.Seconds())
		t.Add(name, secs(dU), secs(dP), secs(dT), fmt.Sprintf("%+.0f%%", gain))
	}
	return &Result{Table: t, Notes: []string{
		"paper: combined average gain 47% (24-84%)",
	}}, nil
}

// ZeroDelay reproduces the §5 side study: interpreted levelized
// zero-delay simulation versus compiled (LCC) zero-delay simulation.
func ZeroDelay(o Options) (*Result, error) {
	o = o.withDefaults()
	t := texttable.New(
		fmt.Sprintf("Zero-delay side study — interpreted vs compiled LCC (%d vectors)", o.Vectors),
		"Circuit", "Interpreted", "Compiled", "Speedup")
	var si, sc float64
	for _, name := range o.Circuits {
		c, vecs, err := bench(o, name)
		if err != nil {
			return nil, err
		}
		zi, err := eventsim.NewZeroDelay(c)
		if err != nil {
			return nil, err
		}
		dI, err := bestOf(o.Repeats, func() error { return nil }, vecs, zi.ApplyVector)
		if err != nil {
			return nil, err
		}
		zc, err := lcc.Compile(c)
		if err != nil {
			return nil, err
		}
		dC, err := bestOf(o.Repeats, func() error { return zc.ResetConsistent(nil) }, vecs, zc.ApplyVector)
		if err != nil {
			return nil, err
		}
		t.Add(name, secs(dI), secs(dC), ratio(dI, dC))
		si += dI.Seconds()
		sc += dC.Seconds()
	}
	t.Add("TOTAL", fmt.Sprintf("%.3f", si), fmt.Sprintf("%.3f", sc), fmt.Sprintf("%.1fx", si/sc))
	return &Result{Table: t, Notes: []string{
		"paper: compiled zero-delay ≈ 1/23 of interpreted; our compiled substrate is itself",
		"a threaded-code interpreter, which compresses this ratio (see EXPERIMENTS.md)",
	}}, nil
}

// Experiments maps experiment names to their runners, in presentation
// order.
var Experiments = []struct {
	Name string
	Run  func(Options) (*Result, error)
}{
	{"fig19", Fig19},
	{"fig20", Fig20},
	{"fig21", Fig21},
	{"fig22", Fig22},
	{"fig23", Fig23},
	{"fig24", Fig24},
	{"zerodelay", ZeroDelay},
	{"parallel", ParallelExec},
	{"codesize", CodeSize},
	{"dataparallel", DataParallel},
	{"faultcov", FaultCoverage},
	{"activity", Activity},
	{"timing", Timing},
	{"deadstore", DeadStore},
	{"resub", Resub},
	{"chaos", Chaos},
	{"gating", Gating},
	{"native", Native},
	{"serve", Serve},
}

// Run executes one experiment by name.
func Run(name string, o Options) (*Result, error) {
	for _, e := range Experiments {
		if e.Name == name {
			return e.Run(o)
		}
	}
	return nil, fmt.Errorf("harness: unknown experiment %q", name)
}

// All runs every experiment, writing each table as it completes.
func All(o Options, w io.Writer) error {
	for _, e := range Experiments {
		r, err := e.Run(o)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		if _, err := fmt.Fprintf(w, "%s\n", r); err != nil {
			return err
		}
	}
	return nil
}
