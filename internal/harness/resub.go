package harness

import (
	"fmt"

	"udsim/internal/circuit"
	"udsim/internal/parsim"
	"udsim/internal/pcset"
	"udsim/internal/resub"
	"udsim/internal/texttable"
	"udsim/internal/vectors"
	"udsim/internal/verify"
)

// resubEngine is the slice of the simulator API the resubstitution
// experiment drives: both compiled techniques satisfy it.
type resubEngine interface {
	CodeSize() int
	EliminateDeadStores() (int, error)
	ResetConsistent(inputs []bool) error
	ApplyVector(vec []bool) error
	Final(n circuit.NetID) bool
}

// Resub measures the resubstitution optimizer's instruction-stream
// shrinkage and wall-clock effect per circuit and technique. Each circuit
// is optimized once; for each technique the plain and optimized netlists
// are compiled side by side, the optimized engine (and its composition
// with the dead-store eliminator) reports its code size, both engines
// replay the same vector stream for timing, and every surviving net's
// settled value is validated bit-identical through the certificate's
// fate map. The certificate itself is replayed first (rules V013/V014).
func Resub(o Options) (*Result, error) {
	o = o.withDefaults()
	t := texttable.New("Resubstitution (proof-carrying; instruction-stream shrinkage)",
		"Circuit", "Gates", "Merged", "Const", "Stripped",
		"Technique", "Instrs", "Resub", "+DSE", "Reduction", "Plain(s)", "Resub(s)")
	vcount := o.Vectors
	if vcount > 200 {
		vcount = 200 // the bit-identity replay is validation, not timing
	}
	for _, name := range o.Circuits {
		c, vecs, err := bench(o, name)
		if err != nil {
			return nil, err
		}
		res, err := resub.Run(c, resub.Config{Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		if rep := verify.CheckRewrite(res); !rep.Clean() {
			return nil, fmt.Errorf("resub: %s: certificate replay failed:\n%s", name, rep)
		}
		for i, tech := range []string{"pcset", "parallel", "parallel+trim"} {
			build := func(target *circuit.Circuit) (resubEngine, error) {
				if tech == "pcset" {
					return pcset.Compile(target, nil)
				}
				return parsim.Compile(target, parsim.Config{WordBits: o.WordBits, Trim: tech == "parallel+trim"})
			}
			plain, err := build(res.Original)
			if err != nil {
				return nil, err
			}
			opt, err := build(res.Optimized)
			if err != nil {
				return nil, err
			}
			if err := resubEquivalent(res, plain, opt, vecs, vcount); err != nil {
				return nil, fmt.Errorf("resub: %s/%s: %w", name, tech, err)
			}
			dse, err := build(res.Optimized)
			if err != nil {
				return nil, err
			}
			if _, err := dse.EliminateDeadStores(); err != nil {
				return nil, err
			}
			dPlain, err := bestOf(o.Repeats, func() error { return plain.ResetConsistent(nil) }, vecs, plain.ApplyVector)
			if err != nil {
				return nil, err
			}
			dOpt, err := bestOf(o.Repeats, func() error { return opt.ResetConsistent(nil) }, vecs, opt.ApplyVector)
			if err != nil {
				return nil, err
			}
			cname, gates, merged, cnst, strip := name,
				fmt.Sprintf("%d->%d", res.Cert.GatesBefore, res.Cert.GatesAfter),
				fmt.Sprint(res.MergedCount()), fmt.Sprint(res.ConstCount()), fmt.Sprint(res.StrippedCount())
			if i > 0 {
				cname, gates, merged, cnst, strip = "", "", "", "", ""
			}
			t.Add(cname, gates, merged, cnst, strip,
				tech, plain.CodeSize(), opt.CodeSize(), dse.CodeSize(),
				fmt.Sprintf("%.1f%%", 100*(1-float64(opt.CodeSize())/float64(plain.CodeSize()))),
				secs(dPlain), secs(dOpt))
		}
	}
	return &Result{Table: t, Notes: []string{
		"every merge/constant proven before rewriting; certificate replayed (V013/V014);",
		"surviving nets validated bit-identical to the plain engine over the replay;",
		"+DSE = optimized netlist composed with the dead-store eliminator",
	}}, nil
}

// resubEquivalent replays n vectors through the plain and optimized
// engines and checks every surviving original net's settled value
// through the fate map (constants and complemented merges included).
func resubEquivalent(res *resub.Result, plain, opt resubEngine, vecs *vectors.Set, n int) error {
	orig := res.Original
	// Original net -> optimized net carrying its value, resolved by name.
	optID := make([]circuit.NetID, orig.NumNets())
	for id := range orig.Nets {
		nid := circuit.NetID(id)
		target, _, isConst, _, ok := res.Resolve(nid)
		optID[id] = circuit.NoNet
		if !ok || isConst {
			continue
		}
		tid, found := res.Optimized.NetByName(orig.Net(target).Name)
		if !found {
			return fmt.Errorf("fate target %q missing from optimized circuit", orig.Net(target).Name)
		}
		optID[id] = tid
	}
	if err := plain.ResetConsistent(nil); err != nil {
		return err
	}
	if err := opt.ResetConsistent(nil); err != nil {
		return err
	}
	for i := 0; i < n && i < len(vecs.Bits); i++ {
		if err := plain.ApplyVector(vecs.Bits[i]); err != nil {
			return err
		}
		if err := opt.ApplyVector(vecs.Bits[i]); err != nil {
			return err
		}
		for id := range orig.Nets {
			nid := circuit.NetID(id)
			_, invert, isConst, constVal, ok := res.Resolve(nid)
			if !ok {
				continue // stripped: unobservable
			}
			got := constVal
			if !isConst {
				got = opt.Final(optID[id]) != invert
			}
			if want := plain.Final(nid); got != want {
				return fmt.Errorf("vector %d: net %s resolves to %v, plain engine settles %v",
					i, orig.Nets[id].Name, got, want)
			}
		}
	}
	return nil
}
