package harness

import (
	"fmt"
	"math/rand"
	"runtime"

	"udsim/internal/circuit"
	"udsim/internal/obs"
	"udsim/internal/parsim"
	"udsim/internal/shard"
	"udsim/internal/texttable"
	"udsim/internal/vectors"
)

// This file is the activity-gating study: the same circuits driven by
// vector streams of controlled toggle rate, comparing the sequential
// baseline, the plain level-sharded strategy, and the activity-gated
// strategy with and without level fusion. Real workloads rarely change
// every input every vector — the paper's uniformly random streams are
// the worst case for gating — so the sweep makes the activity knob
// explicit: at low toggle rates most input cones are untouched and the
// gated engine skips their shard slices (and, when a whole fused level
// goes idle, its barrier crossing too).

// gatingRates is the toggle-rate sweep: the probability that each
// primary input flips between consecutive vectors.
var gatingRates = []struct {
	Name string
	Rate float64
}{
	{"low", 0.01},
	{"med", 0.10},
	{"high", 0.40},
}

// gatingWorkers picks the worker count for the sharded and gated
// configurations: enough to exercise the barrier machinery even on a
// single-core runner (where wall-clock gains vanish but the barrier and
// skip deltas remain measurable).
func gatingWorkers(list []int) int {
	if len(list) > 0 && list[0] > 1 {
		return list[0]
	}
	return 2
}

// toggleVectors builds a stream whose consecutive vectors differ in each
// primary input with probability rate. The first vector is uniformly
// random; a rate of 0.5 recovers the paper's fully random workload.
func toggleVectors(n, width int, rate float64, seed int64) *vectors.Set {
	r := rand.New(rand.NewSource(seed))
	s := &vectors.Set{Width: width, Bits: make([][]bool, 0, n)}
	cur := make([]bool, width)
	for i := range cur {
		cur[i] = r.Intn(2) == 1
	}
	for len(s.Bits) < n {
		if len(s.Bits) > 0 {
			for i := range cur {
				if r.Float64() < rate {
					cur[i] = !cur[i]
				}
			}
		}
		s.Bits = append(s.Bits, append([]bool(nil), cur...))
	}
	return s
}

// gatingConfig is one measured configuration of the sweep.
type gatingConfig struct {
	strategy shard.Strategy
	workers  int
	fuse     bool
}

// measureGating compiles the parallel technique under one configuration,
// times the stream (best of repeats), then replays it once observed to
// fill the barrier/skip columns. The timed pass never carries an
// observer, mirroring the bench matrix.
func measureGating(o Options, c *circuit.Circuit, vecs *vectors.Set, gc gatingConfig) (BenchRecord, error) {
	var rec BenchRecord
	s, err := parsim.Compile(c, parsim.Config{WordBits: o.WordBits})
	if err != nil {
		return rec, err
	}
	defer s.Close()
	s.SetLevelFusion(gc.fuse)
	if gc.strategy != shard.Sequential {
		if _, err := s.ConfigureExec(gc.strategy, gc.workers); err != nil {
			return rec, err
		}
	}
	d, err := bestOf(o.Repeats, func() error { return s.ResetConsistent(nil) }, vecs,
		func(vec []bool) error { return s.ApplyVector(vec) })
	if err != nil {
		return rec, err
	}
	rec.NsPerVector = float64(d.Nanoseconds()) / float64(vecs.Len())

	// Observed replay: barrier waits and skip counts come from the
	// observer, level tallies from the gating decision counters.
	ob := obs.New(obs.Config{})
	s.SetObserver(ob)
	_, run0, _ := s.GatingLevels()
	if err := s.ResetConsistent(nil); err != nil {
		return rec, err
	}
	for _, vec := range vecs.Bits {
		if err := s.ApplyVector(vec); err != nil {
			return rec, err
		}
	}
	_, run1, _ := s.GatingLevels()
	snap := s.Snapshot()
	s.SetObserver(nil)
	n := float64(vecs.Len())
	rec.ObsBarrierWaitNsPerVector = float64(snap.BarrierWaitNanos()) / n
	rec.ObsShardsSkippedPerVector = float64(snap.ShardsSkipped) / n
	rec.ObsLevels = snap.Levels
	rec.Strategy = gc.strategy.String()
	rec.Workers = gc.workers
	rec.Fused = gc.fuse
	switch {
	case gc.strategy == shard.Sequential || gc.workers < 2:
		rec.ObsBarriersPerVector = 0
	case gc.strategy == shard.ActivityGated:
		// Each executed level is one crossing per worker, plus the
		// unconditional closing barrier a gated run always takes.
		rec.ObsBarriersPerVector = float64(run1-run0)/n + 1
	default:
		rec.ObsBarriersPerVector = float64(snap.Levels)
	}
	return rec, nil
}

// GatingMatrix measures circuit × toggle-rate × strategy and returns the
// machine-readable bench file (`udbench -json FILE -exp gating`). The
// per-record toggle_rate, fused, obs_barriers_per_vector and
// obs_shards_skipped_per_vector columns carry the study's results; the
// schema is shared with the plain bench matrix.
func GatingMatrix(o Options, rev string, workersList []int) (*BenchFile, error) {
	o = o.withDefaults()
	w := gatingWorkers(workersList)
	file := &BenchFile{
		Schema:     BenchSchema,
		Revision:   rev,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		WordBits:   o.WordBits,
		Vectors:    o.Vectors,
	}
	cfgs := []gatingConfig{
		{shard.Sequential, 1, false},
		{shard.Sharded, w, false},
		{shard.Sharded, w, true},
		{shard.ActivityGated, w, false},
		{shard.ActivityGated, w, true},
	}
	for _, name := range o.Circuits {
		c, err := benchCircuit(o, name)
		if err != nil {
			return nil, err
		}
		for _, rt := range gatingRates {
			vecs := toggleVectors(o.Vectors, len(c.Inputs), rt.Rate, o.Seed)
			for _, gc := range cfgs {
				rec, err := measureGating(o, c, vecs, gc)
				if err != nil {
					return nil, fmt.Errorf("%s %s: %w", name, gc.strategy, err)
				}
				rec.Circuit = name
				rec.Technique = "parallel"
				rec.ToggleRate = rt.Rate
				file.Records = append(file.Records, rec)
			}
		}
	}
	return file, nil
}

// Gating reproduces the activity-gating table (`udbench -exp gating`):
// for each circuit and toggle rate, ns/vector under the four parallel
// configurations plus the barrier and skip deltas that survive even a
// single-core runner.
func Gating(o Options) (*Result, error) {
	o = o.withDefaults()
	w := gatingWorkers(nil)
	t := texttable.New(
		fmt.Sprintf("Activity gating — toggle-rate sweep (%d vectors, W=%d, %d workers)",
			o.Vectors, o.WordBits, w),
		"Circuit", "Rate", "Seq", "Sharded", "Gated", "G+Fuse", "Spd", "Barr", "GBarr", "Skip/vec")
	for _, name := range o.Circuits {
		c, err := benchCircuit(o, name)
		if err != nil {
			return nil, err
		}
		for _, rt := range gatingRates {
			vecs := toggleVectors(o.Vectors, len(c.Inputs), rt.Rate, o.Seed)
			seq, err := measureGating(o, c, vecs, gatingConfig{shard.Sequential, 1, false})
			if err != nil {
				return nil, err
			}
			sh, err := measureGating(o, c, vecs, gatingConfig{shard.Sharded, w, false})
			if err != nil {
				return nil, err
			}
			gt, err := measureGating(o, c, vecs, gatingConfig{shard.ActivityGated, w, false})
			if err != nil {
				return nil, err
			}
			gf, err := measureGating(o, c, vecs, gatingConfig{shard.ActivityGated, w, true})
			if err != nil {
				return nil, err
			}
			spd := "-"
			if gt.NsPerVector > 0 {
				spd = fmt.Sprintf("%.1fx", sh.NsPerVector/gt.NsPerVector)
			}
			t.Add(name, rt.Name,
				nsv(seq.NsPerVector), nsv(sh.NsPerVector), nsv(gt.NsPerVector), nsv(gf.NsPerVector),
				spd,
				fmt.Sprintf("%.0f", sh.ObsBarriersPerVector),
				fmt.Sprintf("%.1f", gf.ObsBarriersPerVector),
				fmt.Sprintf("%.1f", gt.ObsShardsSkippedPerVector))
		}
	}
	return &Result{Table: t, Notes: []string{
		"gated and fused runs are bit-identical to sequential; Spd = Sharded/Gated ns per vector",
		"Barr = barrier crossings per vector (sharded); GBarr = same for gated+fused (skipped levels cross no barrier)",
		"single-core runners: read the barrier and skip columns, not wall clock",
	}}, nil
}

func nsv(ns float64) string { return fmt.Sprintf("%.0f", ns) }

// benchCircuit loads one benchmark circuit without a vector stream (the
// gating study generates its own toggle-controlled streams).
func benchCircuit(o Options, name string) (*circuit.Circuit, error) {
	c, _, err := bench(Options{Vectors: 1, Seed: o.Seed, WordBits: o.WordBits, Repeats: 1}, name)
	return c, err
}
