package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBenchMatrixRoundTrip runs a miniature bench matrix and checks the
// emitted JSON survives ParseBenchFile intact — the same validation the
// CI smoke run performs on `udbench -json` output.
func TestBenchMatrixRoundTrip(t *testing.T) {
	o := Options{Circuits: []string{"c432"}, Vectors: 64, Repeats: 1}
	file, err := BenchMatrix(o, "test", []int{2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := file.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseBenchFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// sequential + {sharded, batch} × 1 worker count, × 2 techniques.
	if want := 2 * 3; len(back.Records) != want {
		t.Fatalf("got %d records, want %d", len(back.Records), want)
	}
	for _, r := range back.Records {
		if r.Circuit != "c432" || r.NsPerVector <= 0 {
			t.Fatalf("implausible record: %+v", r)
		}
		if r.Strategy == "sharded" || r.Strategy == "vector-batch" {
			if r.Workers != 2 {
				t.Fatalf("parallel record at %d workers, want 2: %+v", r.Workers, r)
			}
		}
	}
	if back.Revision != "test" || back.Vectors != 64 {
		t.Fatalf("header mangled: %+v", back)
	}
}

// TestParseBenchFileRejectsGarbage pins the validation surface.
func TestParseBenchFileRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"wrong schema":  `{"schema":"udbench/v0","revision":"x","gomaxprocs":1,"word_bits":32,"vectors":1,"records":[{"circuit":"c432","technique":"parallel","strategy":"sequential","workers":1,"ns_per_vector":1,"allocs_per_vector":0,"bytes_per_vector":0}]}`,
		"no records":    `{"schema":"udbench/v1","revision":"x","gomaxprocs":1,"word_bits":32,"vectors":1,"records":[]}`,
		"unknown field": `{"schema":"udbench/v1","bogus":true,"records":[]}`,
		"not json":      `ns/op 123`,
	}
	for name, in := range cases {
		if _, err := ParseBenchFile(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

// TestCheckedInBenchFilesParse validates every BENCH_*.json committed at
// the repository root, so a checked-in baseline can never rot into an
// unreadable format. At least one baseline must exist.
func TestCheckedInBenchFilesParse(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no BENCH_*.json baseline checked in at the repository root")
	}
	for _, path := range matches {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ParseBenchFile(f)
		f.Close()
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(path), err)
			continue
		}
		if b.Revision == "" || b.Revision == "dev" {
			t.Errorf("%s: revision %q — baselines must carry a real revision label", filepath.Base(path), b.Revision)
		}
	}
}
