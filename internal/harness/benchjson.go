package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"udsim"
	"udsim/internal/circuit"
)

// BenchSchema identifies the bench-file format; bump on incompatible
// changes. Optional fields (the obs_* observability columns) are added
// with omitempty so older checked-in files still parse.
const BenchSchema = "udbench/v1"

// BenchRecord is one measured configuration: a circuit simulated with a
// technique under an execution strategy and worker count.
type BenchRecord struct {
	Circuit         string  `json:"circuit"`
	Technique       string  `json:"technique"`
	Strategy        string  `json:"strategy"`
	Workers         int     `json:"workers"`
	NsPerVector     float64 `json:"ns_per_vector"`
	AllocsPerVector float64 `json:"allocs_per_vector"`
	BytesPerVector  float64 `json:"bytes_per_vector"`

	// Observability columns, filled from a separate observed pass so the
	// timing columns above stay clean of instrumentation overhead.
	ObsLevels                 int     `json:"obs_levels,omitempty"`
	ObsInstrsPerVector        float64 `json:"obs_instrs_per_vector,omitempty"`
	ObsWordsPerVector         float64 `json:"obs_words_per_vector,omitempty"`
	ObsUtilization            float64 `json:"obs_utilization,omitempty"`
	ObsBarrierWaitNsPerVector float64 `json:"obs_barrier_wait_ns_per_vector,omitempty"`

	// Activity-gating columns (the `-exp gating` matrix): the toggle
	// rate of the driving stream, whether the shard plan was built with
	// level fusion, barrier crossings per vector (static levels for the
	// plain sharded strategy, executed levels plus the closing crossing
	// for the gated one), and shard slices skipped per vector.
	ToggleRate                float64 `json:"toggle_rate,omitempty"`
	Fused                     bool    `json:"fused,omitempty"`
	ObsBarriersPerVector      float64 `json:"obs_barriers_per_vector,omitempty"`
	ObsShardsSkippedPerVector float64 `json:"obs_shards_skipped_per_vector,omitempty"`

	// Multi-tenant service columns (the `-exp serve` matrix): Workers is
	// the concurrent client count, throughput is end-to-end over HTTP,
	// and the cache counters are the compile-once evidence — compiles
	// stays at one per circuit while hits absorb the rest of the load.
	ServeBatches          int64   `json:"serve_batches,omitempty"`
	ServeVectorsPerSecond float64 `json:"serve_vectors_per_second,omitempty"`
	ServeCacheHits        int64   `json:"serve_cache_hits,omitempty"`
	ServeCompiles         int64   `json:"serve_compiles,omitempty"`
	ServePoolPeak         int64   `json:"serve_pool_peak,omitempty"`
	ServeRejected         int64   `json:"serve_rejected,omitempty"`
	ServeIdenticalOutputs bool    `json:"serve_identical_outputs,omitempty"`
}

// BenchFile is the machine-readable benchmark emitted by `udbench -json`,
// checked in as BENCH_<rev>.json so the performance trajectory is
// tracked across revisions.
type BenchFile struct {
	Schema     string        `json:"schema"`
	Revision   string        `json:"revision"`
	GoMaxProcs int           `json:"gomaxprocs"`
	WordBits   int           `json:"word_bits"`
	Vectors    int           `json:"vectors"`
	Records    []BenchRecord `json:"records"`
}

// WriteJSON renders the bench file as indented JSON.
func (b *BenchFile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ParseBenchFile reads and validates a bench file.
func ParseBenchFile(r io.Reader) (*BenchFile, error) {
	var b BenchFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("harness: bench file: %w", err)
	}
	if b.Schema != BenchSchema {
		return nil, fmt.Errorf("harness: bench file schema %q, want %q", b.Schema, BenchSchema)
	}
	if len(b.Records) == 0 {
		return nil, fmt.Errorf("harness: bench file has no records")
	}
	return &b, nil
}

// streamEngine is the facade slice the bench matrix drives: a generic
// engine that streams vectors, releases its workers, and accepts a
// runtime observer. Both compiled techniques satisfy it.
type streamEngine interface {
	udsim.Engine
	udsim.Streamer
	udsim.Closer
	udsim.Observable
}

// measureStream times the vector stream through the engine (best of
// repeats, one warm-up pass first) and measures the steady-state
// allocation rate of the streaming loop.
func measureStream(e streamEngine, vecs [][]bool, repeats int) (BenchRecord, error) {
	var rec BenchRecord
	if err := e.ResetConsistent(nil); err != nil {
		return rec, err
	}
	if err := e.ApplyStream(vecs); err != nil { // warm-up: lazy buffers, clones
		return rec, err
	}
	if repeats < 1 {
		repeats = 1
	}
	var best time.Duration
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	for r := 0; r < repeats; r++ {
		start := time.Now()
		if err := e.ApplyStream(vecs); err != nil {
			return rec, err
		}
		if d := time.Since(start); r == 0 || d < best {
			best = d
		}
	}
	runtime.ReadMemStats(&ms1)
	n := float64(len(vecs) * repeats)
	rec.NsPerVector = float64(best.Nanoseconds()) / float64(len(vecs))
	rec.AllocsPerVector = float64(ms1.Mallocs-ms0.Mallocs) / n
	rec.BytesPerVector = float64(ms1.TotalAlloc-ms0.TotalAlloc) / n
	return rec, nil
}

// observeStream replays the stream once with an observer attached and
// fills the record's obs_* columns. It runs after measureStream so the
// timing columns never include instrumentation overhead (tiny as it is).
func observeStream(e streamEngine, vecs [][]bool, rec *BenchRecord) error {
	ob := udsim.NewObserver(udsim.ObserverConfig{})
	e.Observe(ob)
	defer e.Observe(nil)
	if err := e.ResetConsistent(nil); err != nil {
		return err
	}
	if err := e.ApplyStream(vecs); err != nil {
		return err
	}
	s := e.Snapshot()
	if s == nil || s.Vectors == 0 {
		return fmt.Errorf("harness: observer saw no vectors")
	}
	n := float64(s.Vectors)
	rec.ObsLevels = s.Levels
	rec.ObsInstrsPerVector = float64(s.Instrs) / n
	rec.ObsWordsPerVector = float64(s.Words) / n
	rec.ObsUtilization = s.MeanUtilization()
	rec.ObsBarrierWaitNsPerVector = float64(s.BarrierWaitNanos()) / n
	return nil
}

// benchTechniques are the compiled techniques the bench matrix covers.
var benchTechniques = []string{"parallel", "pcset"}

// buildStreamEngine opens one technique through the facade with an
// execution strategy configured.
func buildStreamEngine(technique string, o Options, c *circuit.Circuit, strategy udsim.ExecStrategy, workers int) (streamEngine, error) {
	t, topts, err := udsim.ParseTechnique(technique)
	if err != nil {
		return nil, err
	}
	if t == udsim.TechParallel {
		topts = append(topts, udsim.WithWordBits(o.WordBits))
	}
	topts = append(topts, udsim.WithExec(strategy, workers))
	e, err := udsim.Open(c, t, topts...)
	if err != nil {
		return nil, err
	}
	se, ok := e.(streamEngine)
	if !ok {
		return nil, fmt.Errorf("harness: technique %q cannot stream", technique)
	}
	return se, nil
}

// BenchMatrix measures circuit × technique × strategy × workers and
// returns the machine-readable bench file. The sequential strategy is
// measured once (workers is meaningless for it); sharded and
// vector-batch are measured at every worker count in workersList.
func BenchMatrix(o Options, rev string, workersList []int) (*BenchFile, error) {
	o = o.withDefaults()
	if len(workersList) == 0 {
		workersList = []int{runtime.GOMAXPROCS(0)}
	}
	file := &BenchFile{
		Schema:     BenchSchema,
		Revision:   rev,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		WordBits:   o.WordBits,
		Vectors:    o.Vectors,
	}
	type cfg struct {
		strategy udsim.ExecStrategy
		workers  int
	}
	cfgs := []cfg{{udsim.ExecSequential, 1}}
	for _, w := range workersList {
		cfgs = append(cfgs, cfg{udsim.ExecSharded, w}, cfg{udsim.ExecVectorBatch, w})
	}
	for _, name := range o.Circuits {
		c, vecs, err := bench(o, name)
		if err != nil {
			return nil, err
		}
		for _, tech := range benchTechniques {
			for _, cf := range cfgs {
				e, err := buildStreamEngine(tech, o, c, cf.strategy, cf.workers)
				if err != nil {
					return nil, err
				}
				rec, err := measureStream(e, vecs.Bits, o.Repeats)
				if err == nil {
					err = observeStream(e, vecs.Bits, &rec)
				}
				e.Close()
				if err != nil {
					return nil, err
				}
				rec.Circuit = name
				rec.Technique = tech
				rec.Strategy = cf.strategy.String()
				rec.Workers = cf.workers
				file.Records = append(file.Records, rec)
			}
		}
	}
	return file, nil
}
