package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"udsim/internal/circuit"
	"udsim/internal/parsim"
	"udsim/internal/pcset"
	"udsim/internal/shard"
)

// BenchSchema identifies the bench-file format; bump on incompatible
// changes.
const BenchSchema = "udbench/v1"

// BenchRecord is one measured configuration: a circuit simulated with a
// technique under an execution strategy and worker count.
type BenchRecord struct {
	Circuit         string  `json:"circuit"`
	Technique       string  `json:"technique"`
	Strategy        string  `json:"strategy"`
	Workers         int     `json:"workers"`
	NsPerVector     float64 `json:"ns_per_vector"`
	AllocsPerVector float64 `json:"allocs_per_vector"`
	BytesPerVector  float64 `json:"bytes_per_vector"`
}

// BenchFile is the machine-readable benchmark emitted by `udbench -json`,
// checked in as BENCH_<rev>.json so the performance trajectory is
// tracked across revisions.
type BenchFile struct {
	Schema     string        `json:"schema"`
	Revision   string        `json:"revision"`
	GoMaxProcs int           `json:"gomaxprocs"`
	WordBits   int           `json:"word_bits"`
	Vectors    int           `json:"vectors"`
	Records    []BenchRecord `json:"records"`
}

// WriteJSON renders the bench file as indented JSON.
func (b *BenchFile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ParseBenchFile reads and validates a bench file.
func ParseBenchFile(r io.Reader) (*BenchFile, error) {
	var b BenchFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("harness: bench file: %w", err)
	}
	if b.Schema != BenchSchema {
		return nil, fmt.Errorf("harness: bench file schema %q, want %q", b.Schema, BenchSchema)
	}
	if len(b.Records) == 0 {
		return nil, fmt.Errorf("harness: bench file has no records")
	}
	return &b, nil
}

// streamEngine is the slice of the compiled simulators the bench matrix
// needs: both parsim.Sim and pcset.Sim implement it.
type streamEngine interface {
	ResetConsistent(inputs []bool) error
	ApplyStream(vecs [][]bool) error
	Close()
}

// measureStream times the vector stream through the engine (best of
// repeats, one warm-up pass first) and measures the steady-state
// allocation rate of the streaming loop.
func measureStream(e streamEngine, vecs [][]bool, repeats int) (BenchRecord, error) {
	var rec BenchRecord
	if err := e.ResetConsistent(nil); err != nil {
		return rec, err
	}
	if err := e.ApplyStream(vecs); err != nil { // warm-up: lazy buffers, clones
		return rec, err
	}
	if repeats < 1 {
		repeats = 1
	}
	var best time.Duration
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	for r := 0; r < repeats; r++ {
		start := time.Now()
		if err := e.ApplyStream(vecs); err != nil {
			return rec, err
		}
		if d := time.Since(start); r == 0 || d < best {
			best = d
		}
	}
	runtime.ReadMemStats(&ms1)
	n := float64(len(vecs) * repeats)
	rec.NsPerVector = float64(best.Nanoseconds()) / float64(len(vecs))
	rec.AllocsPerVector = float64(ms1.Mallocs-ms0.Mallocs) / n
	rec.BytesPerVector = float64(ms1.TotalAlloc-ms0.TotalAlloc) / n
	return rec, nil
}

// benchTechniques are the compiled techniques the bench matrix covers.
var benchTechniques = []string{"parallel", "pcset"}

// buildStreamEngine compiles one technique with an execution strategy.
func buildStreamEngine(technique string, o Options, c *circuit.Circuit, strategy shard.Strategy, workers int) (streamEngine, error) {
	switch technique {
	case "parallel":
		s, err := parsim.Compile(c, parsim.Config{WordBits: o.WordBits})
		if err != nil {
			return nil, err
		}
		if _, err := s.ConfigureExec(strategy, workers); err != nil {
			return nil, err
		}
		return s, nil
	case "pcset":
		s, err := pcset.Compile(c, nil)
		if err != nil {
			return nil, err
		}
		if _, err := s.ConfigureExec(strategy, workers); err != nil {
			return nil, err
		}
		return s, nil
	}
	return nil, fmt.Errorf("harness: unknown bench technique %q", technique)
}

// BenchMatrix measures circuit × technique × strategy × workers and
// returns the machine-readable bench file. The sequential strategy is
// measured once (workers is meaningless for it); sharded and
// vector-batch are measured at every worker count in workersList.
func BenchMatrix(o Options, rev string, workersList []int) (*BenchFile, error) {
	o = o.withDefaults()
	if len(workersList) == 0 {
		workersList = []int{runtime.GOMAXPROCS(0)}
	}
	file := &BenchFile{
		Schema:     BenchSchema,
		Revision:   rev,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		WordBits:   o.WordBits,
		Vectors:    o.Vectors,
	}
	type cfg struct {
		strategy shard.Strategy
		workers  int
	}
	cfgs := []cfg{{shard.Sequential, 1}}
	for _, w := range workersList {
		cfgs = append(cfgs, cfg{shard.Sharded, w}, cfg{shard.VectorBatch, w})
	}
	for _, name := range o.Circuits {
		c, vecs, err := bench(o, name)
		if err != nil {
			return nil, err
		}
		for _, tech := range benchTechniques {
			for _, cf := range cfgs {
				e, err := buildStreamEngine(tech, o, c, cf.strategy, cf.workers)
				if err != nil {
					return nil, err
				}
				rec, err := measureStream(e, vecs.Bits, o.Repeats)
				e.Close()
				if err != nil {
					return nil, err
				}
				rec.Circuit = name
				rec.Technique = tech
				rec.Strategy = cf.strategy.String()
				rec.Workers = cf.workers
				file.Records = append(file.Records, rec)
			}
		}
	}
	return file, nil
}
