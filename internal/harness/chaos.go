package harness

import (
	"fmt"
	"runtime"
	"time"

	"udsim"
	"udsim/internal/resilience/chaos"
	"udsim/internal/texttable"
)

// Chaos reproduces the guarded-execution study: for each circuit, the
// unfaulted guard overhead (a guarded sharded stream against the bare
// engine — the supervisor's steady-state cost is checkpointing plus
// watchdog arming, targeted at ≤2%) and a recovery drill — a
// deterministic worker panic injected mid-stream that the supervisor
// must absorb by quarantining the shard plan and replaying the batch
// sequentially, leaving outputs bit-identical to an unfaulted
// sequential run. The drill's guard counters (faults, replays, oracle
// cross-checks) come from the same observer export a production scraper
// would read.
func Chaos(o Options) (*Result, error) {
	o = o.withDefaults()
	workers := runtime.GOMAXPROCS(0)
	pol := udsim.DefaultGuardPolicy()
	t := texttable.New(
		fmt.Sprintf("Guarded execution — overhead and recovery drill (%d vectors, W=%d, %d workers)",
			o.Vectors, o.WordBits, workers),
		"Circuit", "Bare", "Guarded", "Overhead", "Drill", "Recovered", "Replayed", "Checks")
	var sumBare, sumGuard float64
	for _, name := range o.Circuits {
		c, vecs, err := bench(o, name)
		if err != nil {
			return nil, err
		}
		timeStream := func(extra ...udsim.Option) (time.Duration, error) {
			opts := append([]udsim.Option{
				udsim.WithWordBits(o.WordBits),
				udsim.WithExec(udsim.ExecSharded, workers),
			}, extra...)
			e, err := udsim.Open(c, udsim.TechParallel, opts...)
			if err != nil {
				return 0, err
			}
			se := e.(streamEngine)
			defer se.Close()
			var best time.Duration
			for r := 0; r <= o.Repeats; r++ {
				if err := se.ResetConsistent(nil); err != nil {
					return 0, err
				}
				start := time.Now()
				if err := se.ApplyStream(vecs.Bits); err != nil {
					return 0, err
				}
				// Repeat 0 is the warm-up pass (checkpoint buffers, clones).
				if d := time.Since(start); r == 1 || (r > 1 && d < best) {
					best = d
				}
			}
			return best, nil
		}
		dBare, err := timeStream()
		if err != nil {
			return nil, err
		}
		dGuard, err := timeStream(udsim.WithGuard(pol))
		if err != nil {
			return nil, err
		}
		overhead := 100 * (dGuard.Seconds() - dBare.Seconds()) / dBare.Seconds()
		sumBare += dBare.Seconds()
		sumGuard += dGuard.Seconds()

		drill, recovered, replayed, checks, err := chaosDrill(o, c, vecs.Bits, workers)
		if err != nil {
			return nil, err
		}
		t.Add(name, secs(dBare), secs(dGuard), fmt.Sprintf("%+.1f%%", overhead),
			drill, recovered, replayed, checks)
	}
	t.Add("TOTAL", fmt.Sprintf("%.3f", sumBare), fmt.Sprintf("%.3f", sumGuard),
		fmt.Sprintf("%+.1f%%", 100*(sumGuard-sumBare)/sumBare), "", "", "", "")
	return &Result{Table: t, Notes: []string{
		"target: guarded steady state ≤2% over bare; 0 allocs/op enforced by BenchmarkGuardedStream -benchmem",
		"drill: deterministic worker panic at (run 3, level 0, shard 0) → quarantine + sequential replay;",
		"Recovered=yes means the stream completed and every settled net matched a sequential reference",
	}}, nil
}

// chaosDrill injects one worker panic into a guarded sharded stream and
// reports how the supervisor handled it: the fault kind it recorded,
// whether the stream recovered bit-identically, and the replay /
// cross-check counts from the guard counters.
func chaosDrill(o Options, c *udsim.Circuit, vecs [][]bool, workers int) (drill, recovered string, replayed, checks int64, err error) {
	run := 3
	if len(vecs) < run {
		run = 1
	}
	inj := chaos.PanicAt(run, 0, 0)
	pol := udsim.DefaultGuardPolicy()
	if n := len(vecs) / 8; n > 0 {
		pol.CrossCheckEvery = n // sample the oracle a few times per stream
	}
	ob := udsim.NewObserver(udsim.ObserverConfig{})
	e, err := udsim.Open(c, udsim.TechParallel,
		udsim.WithWordBits(o.WordBits),
		udsim.WithExec(udsim.ExecSharded, workers),
		udsim.WithGuard(pol),
		udsim.WithFaultInjection(inj),
		udsim.WithObserver(ob))
	if err != nil {
		return "", "", 0, 0, err
	}
	g := e.(*udsim.GuardedSim)
	defer g.Close()
	if err := g.ResetConsistent(nil); err != nil {
		return "", "", 0, 0, err
	}
	streamErr := g.ApplyStream(vecs)

	drill, recovered = "none", "no"
	if f := g.LastFault(); f != nil {
		drill = f.Kind.String()
	}
	gs := ob.Snapshot().Guard
	replayed, checks = gs.ReplayedVectors, gs.CrossChecks
	if streamErr != nil || !g.Degraded() {
		return drill, recovered, replayed, checks, nil
	}
	// Recovery only counts if the degraded outputs are bit-identical to
	// an unfaulted sequential run of the same stream.
	ref, err := udsim.Open(c, udsim.TechParallel, udsim.WithWordBits(o.WordBits))
	if err != nil {
		return "", "", 0, 0, err
	}
	if err := ref.ResetConsistent(nil); err != nil {
		return "", "", 0, 0, err
	}
	if err := ref.(udsim.Streamer).ApplyStream(vecs); err != nil {
		return "", "", 0, 0, err
	}
	recovered = "yes"
	for i := range g.Circuit().Nets {
		if g.Final(udsim.NetID(i)) != ref.Final(udsim.NetID(i)) {
			recovered = "DIVERGED"
			break
		}
	}
	return drill, recovered, replayed, checks, nil
}
