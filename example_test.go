package udsim_test

import (
	"fmt"
	"log"

	"udsim"
)

// The canonical hazard: C = AND(A, NOT A) pulses for one gate delay when
// A rises — visible under the unit-delay model, invisible at zero delay.
func ExampleOpen() {
	b := udsim.NewBuilder("demo")
	a := b.Input("A")
	n := b.Gate(udsim.Not, "N", a)
	c := b.Gate(udsim.And, "C", a, n)
	b.Output(c)
	ckt := b.MustBuild()

	sim, err := udsim.Open(ckt, udsim.TechParallel)
	if err != nil {
		log.Fatal(err)
	}
	sim.ResetConsistent([]bool{false}) // settle with A = 0
	sim.Apply([]bool{true})            // raise A
	tr := sim.(udsim.Tracer)           // compiled engines expose full waveforms
	for t := 0; t <= sim.Depth(); t++ {
		v, _ := tr.ValueAt(c, t)
		fmt.Printf("t=%d C=%v\n", t, v)
	}
	// Output:
	// t=0 C=false
	// t=1 C=true
	// t=2 C=false
}

// The PC-set method exposes the same waveform through per-potential-change
// variables; monitored nets are observable at every time step.
func ExampleOpen_pcset() {
	b := udsim.NewBuilder("fig4")
	a := b.Input("A")
	bb := b.Input("B")
	cc := b.Input("C")
	d := b.Gate(udsim.And, "D", a, bb)
	e := b.Gate(udsim.And, "E", d, cc)
	b.Output(e)
	ckt := b.MustBuild()

	sim, err := udsim.Open(ckt, udsim.TechPCSet)
	if err != nil {
		log.Fatal(err)
	}
	sim.ResetConsistent(nil)
	sim.Apply([]bool{true, true, true})
	fmt.Println("E settles to", sim.Final(e), "after", sim.Depth(), "gate delays")
	// Output:
	// E settles to true after 2 gate delays
}

// Synchronous sequential circuits are broken at their flip-flops (§1 of
// the paper) and stepped cycle by cycle over any combinational engine.
func ExampleNewSequential() {
	seq, err := udsim.NewSequential(udsim.Counter(4), func(c *udsim.Circuit) (udsim.Engine, error) {
		return udsim.Open(c, udsim.TechParallel)
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		seq.Step([]bool{true}) // enable high
	}
	fmt.Println("counter after 5 cycles:", seq.Uint())
	// Output:
	// counter after 5 cycles: 5
}

// 63 stuck-at faults are graded per compiled pass; lane 0 is fault-free.
func ExampleNewFaultSim() {
	b := udsim.NewBuilder("and2")
	a := b.Input("a")
	bb := b.Input("b")
	o := b.Gate(udsim.And, "o", a, bb)
	b.Output(o)
	ckt := b.MustBuild()

	fs, err := udsim.NewFaultSim(ckt)
	if err != nil {
		log.Fatal(err)
	}
	faults := udsim.AllFaults(fs.Circuit())
	res, err := fs.Run(faults, [][]bool{{true, true}, {false, true}, {true, false}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coverage %.0f%% (%d faults)\n", 100*res.Coverage(), len(faults))
	// Output:
	// coverage 100% (6 faults)
}

// An asynchronous SR latch holds state with no flip-flop primitive —
// the paper's future-work territory, handled by the event-driven engine.
func ExampleNewAsync() {
	b := udsim.NewBuilder("sr")
	sn := b.Input("Sn")
	rn := b.Input("Rn")
	q := b.Net("Q")
	qb := b.Net("Qb")
	b.GateInto(udsim.Nand, q, sn, qb)
	b.GateInto(udsim.Nand, qb, rn, q)
	b.Output(q)
	ckt, err := udsim.NewAsyncBuilderCircuit(b)
	if err != nil {
		log.Fatal(err)
	}
	s, err := udsim.NewAsync(ckt)
	if err != nil {
		log.Fatal(err)
	}
	s.Apply([]bool{false, true}) // set (active low)
	s.Apply([]bool{true, true})  // hold
	qID, _ := s.Circuit().NetByName("Q")
	fmt.Println("Q held at", s.Value(qID))
	// Output:
	// Q held at 1
}

// PODEM generates a test for a stuck-at fault, or proves it redundant.
func ExampleNewATPG() {
	b := udsim.NewBuilder("red")
	a := b.Input("a")
	bb := b.Input("b")
	x := b.Gate(udsim.And, "x", a, bb)
	o := b.Gate(udsim.Or, "o", a, x) // absorption: o ≡ a
	b.Output(o)
	ckt := b.MustBuild()

	gen, err := udsim.NewATPG(ckt)
	if err != nil {
		log.Fatal(err)
	}
	xID, _ := gen.Circuit().NetByName("x")
	_, st := gen.Generate(udsim.Fault{Net: xID, Kind: udsim.StuckAt0})
	fmt.Println("x/sa0 is", st)
	// Output:
	// x/sa0 is untestable
}
