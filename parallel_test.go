// Tests for the multicore execution engine at the facade level: the
// sharded strategy must be bit-for-bit identical to sequential execution
// on every benchmark circuit, for both compiled techniques, at every
// worker count — the determinism contract of ISSUE satellite (c). Run
// under -race in CI.
package udsim

import (
	"fmt"
	"testing"

	"udsim/internal/vectors"
)

// sweepWorkers are the worker counts the determinism sweep exercises.
// Counts above GOMAXPROCS are deliberate: the plan then has more shards
// than cores and the barrier must still line the levels up correctly.
var sweepWorkers = []int{1, 2, 4, 8}

// TestShardedDeterminismSweep compares the sharded execution engine
// against the sequential baseline across all synthesized ISCAS-85
// profiles × both compiled techniques × worker counts {1,2,4,8}:
// identical finals on every net after every vector, and identical
// waveforms where traced.
func TestShardedDeterminismSweep(t *testing.T) {
	names := ISCAS85Names()
	nvec := 8
	if testing.Short() {
		names = []string{"c432", "c1908", "c6288"}
		nvec = 4
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			c, err := ISCAS85(name)
			if err != nil {
				t.Fatal(err)
			}
			vecs := vectors.Random(nvec, len(c.Inputs), 1990)
			t.Run("parallel", func(t *testing.T) {
				ref, err := openParallelSim(c)
				if err != nil {
					t.Fatal(err)
				}
				for _, w := range sweepWorkers {
					sh, err := openParallelSim(c, WithExec(ExecSharded, w))
					if err != nil {
						t.Fatalf("workers=%d: %v", w, err)
					}
					if got := sh.ExecStrategy(); got != ExecSharded {
						t.Fatalf("workers=%d: strategy %v, want %v", w, got, ExecSharded)
					}
					compareParallel(t, ref, sh, vecs, w)
					sh.Close()
				}
			})
			t.Run("pcset", func(t *testing.T) {
				ref, err := openPCSetSim(c, nil)
				if err != nil {
					t.Fatal(err)
				}
				for _, w := range sweepWorkers {
					sh, err := openPCSetSim(c, nil, WithExec(ExecSharded, w))
					if err != nil {
						t.Fatalf("workers=%d: %v", w, err)
					}
					comparePCSet(t, ref, sh, vecs, w)
					sh.Close()
				}
			})
		})
	}
}

func compareParallel(t *testing.T, ref, sh *ParallelSim, vecs *vectors.Set, w int) {
	t.Helper()
	if err := ref.ResetConsistent(nil); err != nil {
		t.Fatal(err)
	}
	if err := sh.ResetConsistent(nil); err != nil {
		t.Fatal(err)
	}
	c := ref.Circuit()
	for v, vec := range vecs.Bits {
		if err := ref.Apply(vec); err != nil {
			t.Fatal(err)
		}
		if err := sh.Apply(vec); err != nil {
			t.Fatal(err)
		}
		for n := range c.Nets {
			id := NetID(n)
			if ref.Final(id) != sh.Final(id) {
				t.Fatalf("workers=%d vec %d net %s: seq=%v sharded=%v",
					w, v, c.Nets[n].Name, ref.Final(id), sh.Final(id))
			}
		}
		// Whole-waveform agreement on the primary outputs: sharded
		// execution reorders instructions within a level, which must not
		// perturb any intermediate time step.
		for _, id := range c.Outputs {
			for tm := 0; tm <= ref.Depth(); tm++ {
				rv, _ := ref.ValueAt(id, tm)
				sv, _ := sh.ValueAt(id, tm)
				if rv != sv {
					t.Fatalf("workers=%d vec %d net %s t=%d: seq=%v sharded=%v",
						w, v, c.Nets[id].Name, tm, rv, sv)
				}
			}
		}
	}
}

func comparePCSet(t *testing.T, ref, sh *PCSetSim, vecs *vectors.Set, w int) {
	t.Helper()
	if err := ref.ResetConsistent(nil); err != nil {
		t.Fatal(err)
	}
	if err := sh.ResetConsistent(nil); err != nil {
		t.Fatal(err)
	}
	c := ref.Circuit()
	for v, vec := range vecs.Bits {
		if err := ref.Apply(vec); err != nil {
			t.Fatal(err)
		}
		if err := sh.Apply(vec); err != nil {
			t.Fatal(err)
		}
		for n := range c.Nets {
			id := NetID(n)
			if ref.Final(id) != sh.Final(id) {
				t.Fatalf("workers=%d vec %d net %s: seq=%v sharded=%v",
					w, v, c.Nets[n].Name, ref.Final(id), sh.Final(id))
			}
		}
		for _, id := range c.Outputs {
			for tm := 0; tm <= ref.Depth(); tm++ {
				rv, rok := ref.ValueAt(id, tm)
				sv, sok := sh.ValueAt(id, tm)
				if rok != sok {
					t.Fatalf("workers=%d vec %d net %s t=%d: observability seq=%v sharded=%v",
						w, v, c.Nets[id].Name, tm, rok, sok)
				}
				if rok && rv != sv {
					t.Fatalf("workers=%d vec %d net %s t=%d: seq=%v sharded=%v",
						w, v, c.Nets[id].Name, tm, rv, sv)
				}
			}
		}
	}
}

// TestShardedStreamIsCoherent checks that ApplyStream under the sharded
// strategy is the same coherent stream as a sequential Apply loop — the
// previous-vector state must thread through the whole stream.
func TestShardedStreamIsCoherent(t *testing.T) {
	c, err := ISCAS85("c880")
	if err != nil {
		t.Fatal(err)
	}
	vecs := vectors.Random(32, len(c.Inputs), 7)
	ref, err := openParallelSim(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.ResetConsistent(nil); err != nil {
		t.Fatal(err)
	}
	for _, vec := range vecs.Bits {
		if err := ref.Apply(vec); err != nil {
			t.Fatal(err)
		}
	}
	sh, err := openParallelSim(c, WithExec(ExecSharded, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	if err := sh.ResetConsistent(nil); err != nil {
		t.Fatal(err)
	}
	if err := sh.ApplyStream(vecs.Bits); err != nil {
		t.Fatal(err)
	}
	for n := range c.Nets {
		id := NetID(n)
		if ref.Final(id) != sh.Final(id) {
			t.Fatalf("net %s: seq=%v sharded stream=%v", c.Nets[n].Name, ref.Final(id), sh.Final(id))
		}
	}
}

// TestVectorBatchBlocksMatchSequential checks the vector-batch strategy's
// substream semantics: each block's final state equals a fresh sequential
// simulator fed exactly that block.
func TestVectorBatchBlocksMatchSequential(t *testing.T) {
	c, err := ISCAS85("c1355")
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	vecs := vectors.Random(4*workers+3, len(c.Inputs), 11) // uneven last block
	ba, err := openParallelSim(c, WithExec(ExecVectorBatch, workers))
	if err != nil {
		t.Fatal(err)
	}
	defer ba.Close()
	if err := ba.ResetConsistent(nil); err != nil {
		t.Fatal(err)
	}
	if err := ba.ApplyStream(vecs.Bits); err != nil {
		t.Fatal(err)
	}
	block := (len(vecs.Bits) + workers - 1) / workers
	for k := 0; k < workers; k++ {
		lo := k * block
		hi := lo + block
		if hi > len(vecs.Bits) {
			hi = len(vecs.Bits)
		}
		ref, err := openParallelSim(c)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.ResetConsistent(nil); err != nil {
			t.Fatal(err)
		}
		for _, vec := range vecs.Bits[lo:hi] {
			if err := ref.Apply(vec); err != nil {
				t.Fatal(err)
			}
		}
		for n := range c.Nets {
			id := NetID(n)
			if ref.Final(id) != ba.BlockFinal(k, id) {
				t.Fatalf("block %d net %s: sequential=%v batch=%v",
					k, c.Nets[n].Name, ref.Final(id), ba.BlockFinal(k, id))
			}
		}
	}
}

// TestAutoStrategyResolves checks that Auto picks a concrete strategy and
// that the result still simulates correctly.
func TestAutoStrategyResolves(t *testing.T) {
	for _, name := range []string{"c432", "c6288"} {
		c, err := ISCAS85(name)
		if err != nil {
			t.Fatal(err)
		}
		e, err := openParallelSim(c, WithExec(ExecAuto, 4))
		if err != nil {
			t.Fatal(err)
		}
		got := e.ExecStrategy()
		if got != ExecSharded && got != ExecVectorBatch {
			t.Fatalf("%s: auto resolved to %v, want a concrete parallel strategy", name, got)
		}
		ref, err := openParallelSim(c)
		if err != nil {
			t.Fatal(err)
		}
		vecs := vectors.Random(4, len(c.Inputs), 3)
		if err := e.ResetConsistent(nil); err != nil {
			t.Fatal(err)
		}
		if err := ref.ResetConsistent(nil); err != nil {
			t.Fatal(err)
		}
		for _, vec := range vecs.Bits {
			if err := e.Apply(vec); err != nil {
				t.Fatal(err)
			}
			if err := ref.Apply(vec); err != nil {
				t.Fatal(err)
			}
		}
		for n := range c.Nets {
			id := NetID(n)
			if ref.Final(id) != e.Final(id) {
				t.Fatalf("%s net %s: seq=%v auto(%v)=%v", name, c.Nets[n].Name, ref.Final(id), got, e.Final(id))
			}
		}
		e.Close()
	}
}

// TestParseExecStrategy pins the facade's strategy-name surface.
func TestParseExecStrategy(t *testing.T) {
	cases := []struct {
		in   string
		want ExecStrategy
		ok   bool
	}{
		{"sequential", ExecSequential, true},
		{"seq", ExecSequential, true},
		{"sharded", ExecSharded, true},
		{"shard", ExecSharded, true},
		{"vector-batch", ExecVectorBatch, true},
		{"batch", ExecVectorBatch, true},
		{"auto", ExecAuto, true},
		{"hyperthreaded", 0, false},
	}
	for _, tc := range cases {
		got, err := ParseExecStrategy(tc.in)
		if tc.ok != (err == nil) {
			t.Fatalf("ParseExecStrategy(%q): err=%v, want ok=%v", tc.in, err, tc.ok)
		}
		if tc.ok && got != tc.want {
			t.Fatalf("ParseExecStrategy(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	for _, s := range []ExecStrategy{ExecSequential, ExecSharded, ExecVectorBatch, ExecAuto} {
		back, err := ParseExecStrategy(s.String())
		if err != nil || back != s {
			t.Fatalf("round trip %v: got %v, err %v", s, back, err)
		}
	}
	_ = fmt.Sprintf("%v", ExecSharded) // Stringer is part of the surface
}
