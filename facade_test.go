package udsim

import (
	"bytes"
	"strings"
	"testing"

	"udsim/internal/vectors"
)

// TestFacadeAccessors sweeps the thin wrappers the larger tests miss.
func TestFacadeAccessors(t *testing.T) {
	c := glitchCircuit()

	par, err := openParallelSim(c, WithTrimming(), WithWordBits(16))
	if err != nil {
		t.Fatal(err)
	}
	if par.EngineName() != "parallel+trim" {
		t.Errorf("name %q", par.EngineName())
	}
	if par.CodeSize() == 0 || par.WordsPerField() != 1 || par.ShiftCount() == 0 {
		t.Errorf("stats: code=%d words=%d shifts=%d", par.CodeSize(), par.WordsPerField(), par.ShiftCount())
	}
	_ = par.ResetConsistent(nil)
	_ = par.Apply([]bool{true})
	cid, _ := par.Circuit().NetByName("C")
	if h := par.History(cid); len(h) != par.Depth()+1 {
		t.Errorf("history length %d", len(h))
	}

	pt, err := openParallelSim(c, WithShiftElimination(PathTracing))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pt.EngineName(), "path-tracing") {
		t.Errorf("name %q", pt.EngineName())
	}
	cb, err := openParallelSim(c, WithShiftElimination(CycleBreaking))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cb.EngineName(), "cycle-breaking") {
		t.Errorf("name %q", cb.EngineName())
	}

	ps, err := openPCSetSim(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ps.NumVars() == 0 || ps.CodeSize() == 0 || ps.EngineName() != "pcset" {
		t.Error("pcset stats wrong")
	}
	_ = ps.ResetConsistent(nil)
	vecs := vectors.Random(64, 1, 3)
	if err := ps.ApplyLanes(vecs.Packed()[0]); err != nil {
		t.Fatal(err)
	}
	if _, ok := ps.LaneValueAt(cid, ps.Depth(), 63); !ok {
		t.Error("lane value unobservable at depth")
	}

	ev, err := NewEventDriven(c, true)
	if err != nil {
		t.Fatal(err)
	}
	_ = ev.ResetConsistent(nil)
	if err := ev.ApplyFast([]bool{true}); err != nil {
		t.Fatal(err)
	}
	if ev.Evals() == 0 || ev.Events() == 0 {
		t.Error("event counters zero")
	}
	if ev.Value3(cid).Valid() == false {
		t.Error("Value3 invalid")
	}
	if _, ok := ev.ValueAt(cid, 0); ok {
		t.Error("ApplyFast must not retain a trace")
	}
	if ev.EngineName() != "event-driven-3v" {
		t.Errorf("name %q", ev.EngineName())
	}

	zi, err := NewZeroDelayInterpreted(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := zi.ApplyVector([]bool{true}); err != nil {
		t.Fatal(err)
	}
	ziC, _ := zi.Circuit().NetByName("C")
	if zi.Value(ziC) != V0 {
		t.Errorf("steady C = %v", zi.Value(ziC))
	}

	zd, _ := NewZeroDelay(c)
	if zd.EngineName() != "lcc-zero-delay" || zd.Depth() != 0 {
		t.Error("zero-delay accessors wrong")
	}
}

func TestFacadeIOHelpers(t *testing.T) {
	dir := t.TempDir()
	c, err := ISCAS85("c499")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"/a.bench", "/a.v"} {
		if err := SaveCircuitFile(dir+name, c); err != nil {
			t.Fatal(err)
		}
		back, err := LoadCircuitFile(dir + name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := CheckEquivalence(c, back, 512, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equivalent {
			t.Fatalf("%s round trip inequivalent: %+v", name, res.Counterexample)
		}
	}
	if err := SaveCircuitFile(dir+"/a.xyz", c); err == nil {
		t.Error("expected unknown-extension error")
	}
	if _, err := LoadCircuitFile(dir + "/missing.bench"); err == nil {
		t.Error("expected missing-file error")
	}
	if _, err := LoadCircuitFile(dir + "/a.xyz"); err == nil {
		t.Error("expected unknown-extension error on load")
	}

	var buf bytes.Buffer
	if err := WriteVerilog(&buf, c.Normalize()); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseVerilog(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeActivityOptions(t *testing.T) {
	c := glitchCircuit()
	rep, err := ProfileActivity(c, [][]bool{{true}, {false}}, WithWordBits(8), WithTrimming())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Vectors != 2 {
		t.Errorf("vectors %d", rep.Vectors)
	}
	hot := rep.Hot(1)
	if len(hot) != 1 {
		t.Errorf("hot %v", hot)
	}
}
