package udsim

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"udsim/internal/bench85"
	"udsim/internal/circuit"
	"udsim/internal/gen"
	"udsim/internal/parsim"
	"udsim/internal/pcset"
	"udsim/internal/vectors"
	"udsim/internal/verify"
)

// resubFacadeCircuit exercises every fate in one small netlist: a
// duplicated XOR cone (merge + stripping), an XNOR complement pair
// (shared inverter), and a proven constant.
func resubFacadeCircuit() *Circuit {
	b := NewBuilder("facade")
	a := b.Input("a")
	x := b.Input("x")
	d1 := b.Gate(Xor, "d1", a, x)
	na := b.Gate(Not, "na", a)
	nx := b.Gate(Not, "nx", x)
	t1 := b.Gate(And, "t1", a, nx)
	t2 := b.Gate(And, "t2", na, x)
	d2 := b.Gate(Or, "d2", t1, t2)
	nd := b.Gate(Xnor, "nd", a, x)
	k := b.Gate(And, "k", a, na)
	o1 := b.Gate(Buf, "o1", d1)
	o2 := b.Gate(Buf, "o2", d2)
	o3 := b.Gate(And, "o3", nd, a)
	o4 := b.Gate(Or, "o4", k, x)
	b.Output(o1)
	b.Output(o2)
	b.Output(o3)
	b.Output(o4)
	return b.MustBuild()
}

// TestResubOpenFacade drives WithResubstitution through Open: the engine
// must keep speaking the original circuit's net IDs while simulating the
// optimized netlist.
func TestResubOpenFacade(t *testing.T) {
	c := resubFacadeCircuit()
	for _, technique := range []Technique{TechParallel, TechPCSet} {
		t.Run(technique.String(), func(t *testing.T) {
			e, err := Open(c, technique, WithResubstitution())
			if err != nil {
				t.Fatal(err)
			}
			defer e.(Closer).Close()
			if name := e.EngineName(); !strings.HasSuffix(name, "+resub") {
				t.Errorf("engine name %q lacks +resub", name)
			}
			res := ResubResultOf(e)
			if res == nil || !res.Changed() {
				t.Fatal("resubstitution result missing or no-op")
			}
			if e.Circuit() != res.Original {
				t.Error("Circuit() does not return the original netlist")
			}

			plain, err := Open(c, technique)
			if err != nil {
				t.Fatal(err)
			}
			defer plain.(Closer).Close()
			orig := res.Original
			vec := make([]bool, len(orig.Inputs))
			for trial := 0; trial < 16; trial++ {
				for i := range vec {
					vec[i] = trial>>uint(i)&1 == 1
				}
				if err := e.Apply(vec); err != nil {
					t.Fatal(err)
				}
				if err := plain.Apply(vec); err != nil {
					t.Fatal(err)
				}
				for id := range orig.Nets {
					n := NetID(id)
					if _, _, _, _, ok := res.Resolve(n); !ok {
						// Stripped: unobservable by contract.
						if v, obs := e.(Tracer).ValueAt(n, e.Depth()); obs || v {
							t.Errorf("stripped net %s observable (%v, %v)", orig.Nets[id].Name, v, obs)
						}
						continue
					}
					if e.Final(n) != plain.Final(n) {
						t.Fatalf("trial %d: net %s final %v, plain %v",
							trial, orig.Nets[id].Name, e.Final(n), plain.Final(n))
					}
				}
			}
		})
	}
}

// TestResubFacadeHistory checks waveform resolution on the parallel
// engine: constants are flat, complemented merges read back inverted,
// stripped nets return nil.
func TestResubFacadeHistory(t *testing.T) {
	c := resubFacadeCircuit()
	p, err := openParallelSim(c, WithResubstitution())
	if err != nil {
		t.Fatal(err)
	}
	res := p.Resub()
	if err := p.ResetConsistent(nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Apply([]bool{true, true}); err != nil {
		t.Fatal(err)
	}
	orig := res.Original
	kID, _ := orig.NetByName("k")
	for i, v := range p.History(kID) {
		if v {
			t.Fatalf("constant net k not flat at t=%d", i)
		}
	}
	ndID, _ := orig.NetByName("nd")
	d1ID, _ := orig.NetByName("d1")
	hn, hd := p.History(ndID), p.History(d1ID)
	if len(hn) != len(hd) {
		t.Fatalf("waveform lengths differ: %d vs %d", len(hn), len(hd))
	}
	for i := range hn {
		if hn[i] == hd[i] {
			t.Fatalf("complemented merge nd not inverted from d1 at t=%d", i)
		}
	}
	t1ID, _ := orig.NetByName("t1")
	if h := p.History(t1ID); h != nil {
		t.Errorf("stripped net t1 has a waveform: %v", h)
	}
}

// TestResubMonitorTranslation: PC-set monitors name original nets; a
// merged net monitors its surviving representative, while nets the pass
// eliminated outright are an error.
func TestResubMonitorTranslation(t *testing.T) {
	c := resubFacadeCircuit()
	norm := c.Normalize()
	d2ID, _ := norm.NetByName("d2")
	aID, _ := norm.NetByName("a")
	// Monitoring the input alongside d2 puts the PRINT group's minimum
	// at level 0, so zero-insertion makes the merged net's surviving
	// representative observable at every time step.
	e, err := Open(c, TechPCSet, WithResubstitution(), WithMonitor(aID, d2ID))
	if err != nil {
		t.Fatalf("monitoring a merged net: %v", err)
	}
	if err := e.ResetConsistent(nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Apply([]bool{true, false}); err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt <= e.Depth(); tt++ {
		if _, ok := e.(Tracer).ValueAt(d2ID, tt); !ok {
			t.Fatalf("monitored merged net d2 unobservable at t=%d", tt)
		}
	}
	e.(Closer).Close()

	for _, name := range []string{"k", "t1"} {
		id, _ := norm.NetByName(name)
		if _, err := Open(c, TechPCSet, WithResubstitution(), WithMonitor(id)); err == nil {
			t.Errorf("monitoring eliminated net %s did not error", name)
		}
	}
}

// TestResubRejectedForInterpreted: the pass applies to compiled
// techniques only.
func TestResubRejectedForInterpreted(t *testing.T) {
	c := resubFacadeCircuit()
	for _, technique := range []Technique{TechEvent3, TechEvent2, TechLCC} {
		if _, err := Open(c, technique, WithResubstitution()); err == nil {
			t.Errorf("%v accepted WithResubstitution", technique)
		}
	}
}

// TestResubGuardComposition: the guarded wrapper inherits the remap by
// delegation and ResubResultOf unwraps it.
func TestResubGuardComposition(t *testing.T) {
	c := resubFacadeCircuit()
	e, err := Open(c, TechParallel, WithResubstitution(), WithGuard(GuardPolicy{}))
	if err != nil {
		t.Fatal(err)
	}
	defer e.(Closer).Close()
	if _, ok := e.(*GuardedSim); !ok {
		t.Fatalf("expected a guarded engine, got %T", e)
	}
	if ResubResultOf(e) == nil {
		t.Error("ResubResultOf did not unwrap the guarded engine")
	}
	if err := e.ResetConsistent(nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Apply([]bool{true, true}); err != nil {
		t.Fatal(err)
	}
}

// resubISCASTechniques are the compiled techniques the optimizer is
// validated under on the benchmark circuits.
var resubISCASTechniques = []string{"pcset", "parallel"}

// TestResubISCAS85 is the acceptance sweep: every profile circuit is
// optimized once, the certificate is fully replayed (V013/V014), and for
// both compiled techniques the optimized engine must be bit-identical to
// the unoptimized one on the verify vector suite with V001-V012 clean on
// the rewritten netlist's compiled programs.
func TestResubISCAS85(t *testing.T) {
	names := gen.Names()
	if testing.Short() {
		names = names[:3]
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			c, err := ISCAS85(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Resubstitute(c, ResubConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Changed() {
				t.Fatalf("%s: optimizer found nothing", name)
			}
			if res.Cert.GatesAfter >= res.Cert.GatesBefore {
				t.Errorf("%s: no gate reduction (%d -> %d)",
					name, res.Cert.GatesBefore, res.Cert.GatesAfter)
			}
			if rep := VerifyRewrite(res); !rep.Clean() {
				t.Fatalf("%s: certificate replay (V013/V014) not clean:\n%s", name, rep)
			}
			vecs := vectors.Random(200, len(res.Original.Inputs), 1990)
			for _, tech := range resubISCASTechniques {
				plain, opt, err := resubEnginePair(res.Original, res.Optimized, tech)
				if err != nil {
					t.Fatal(err)
				}
				// The paper's payoff: a shrinking instruction stream. Gate
				// count always drops (asserted above), but PC-set sizes can
				// shift when readers move to a shallower representative, so
				// the hard requirement is pinned to the heavily redundant
				// profiles; elsewhere the census is informational.
				switch name {
				case "c499", "c1355", "c6288":
					if opt.CodeSize() >= plain.CodeSize() {
						t.Errorf("%s/%s: no instruction reduction (%d -> %d)",
							name, tech, plain.CodeSize(), opt.CodeSize())
					}
				default:
					if opt.CodeSize() >= plain.CodeSize() {
						t.Logf("%s/%s: instruction stream grew: %d -> %d",
							name, tech, plain.CodeSize(), opt.CodeSize())
					}
				}
				if err := resubBitIdentical(res, plain, opt, vecs); err != nil {
					t.Fatalf("%s/%s: %v", name, tech, err)
				}
				if rep := verify.Check(opt.Spec(), verify.Options{}); !rep.Clean() {
					t.Fatalf("%s/%s: optimized programs not verify-clean:\n%s", name, tech, rep)
				}
			}
		})
	}
}

// TestResubIdempotentISCAS: a second pass over an optimized benchmark
// netlist must be a byte-identical no-op.
func TestResubIdempotentISCAS(t *testing.T) {
	for _, name := range []string{"c432", "c499"} {
		c, err := ISCAS85(name)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := Resubstitute(c, ResubConfig{})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Resubstitute(r1.Optimized, ResubConfig{})
		if err != nil {
			t.Fatal(err)
		}
		var w1, w2 bytes.Buffer
		if err := bench85.Write(&w1, r1.Optimized); err != nil {
			t.Fatal(err)
		}
		if err := bench85.Write(&w2, r2.Optimized); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("%s: second pass changed the optimized netlist", name)
		}
	}
}

// TestResubOpenISCAS drives the full facade path — Open with
// WithResubstitution, including its construction-time cross-check and
// implied verification — on a representative subset.
func TestResubOpenISCAS(t *testing.T) {
	names := []string{"c432", "c499", "c6288"}
	if testing.Short() {
		names = names[:1]
	}
	for _, name := range names {
		for _, technique := range []Technique{TechParallel, TechPCSet} {
			t.Run(fmt.Sprintf("%s/%v", name, technique), func(t *testing.T) {
				c, err := ISCAS85(name)
				if err != nil {
					t.Fatal(err)
				}
				e, err := Open(c, technique, WithResubstitution())
				if err != nil {
					t.Fatal(err)
				}
				defer e.(Closer).Close()
				rep, err := Verify(e, VerifyOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Clean() {
					t.Fatalf("optimized engine not verify-clean:\n%s", rep)
				}
				// Spot-check primary outputs against the plain engine.
				plain, err := Open(c, technique)
				if err != nil {
					t.Fatal(err)
				}
				defer plain.(Closer).Close()
				vecs := vectors.Random(50, len(e.Circuit().Inputs), 7)
				for v, vec := range vecs.Bits {
					if err := e.Apply(vec); err != nil {
						t.Fatal(err)
					}
					if err := plain.Apply(vec); err != nil {
						t.Fatal(err)
					}
					for _, po := range e.Circuit().Outputs {
						if e.Final(po) != plain.Final(po) {
							t.Fatalf("vector %d: output %s differs", v, e.Circuit().Net(po).Name)
						}
					}
				}
			})
		}
	}
}

// resubISCASEngine is the compiled-engine slice the sweep drives.
type resubISCASEngine interface {
	CodeSize() int
	ResetConsistent(inputs []bool) error
	ApplyVector(vec []bool) error
	Final(n circuit.NetID) bool
	Spec() *verify.Spec
}

// resubEnginePair compiles the original and optimized netlists with one
// technique.
func resubEnginePair(orig, opt *circuit.Circuit, tech string) (resubISCASEngine, resubISCASEngine, error) {
	build := func(target *circuit.Circuit) (resubISCASEngine, error) {
		if tech == "pcset" {
			return pcset.Compile(target, nil)
		}
		return parsim.Compile(target, parsim.Config{WordBits: 32})
	}
	a, err := build(orig)
	if err != nil {
		return nil, nil, err
	}
	b, err := build(opt)
	if err != nil {
		return nil, nil, err
	}
	return a, b, nil
}

// resubBitIdentical replays the vector suite through both engines and
// compares every surviving original net's settled value through the
// fate map.
func resubBitIdentical(res *ResubResult, plain, opt resubISCASEngine, vecs *vectors.Set) error {
	orig := res.Original
	optID := make([]circuit.NetID, orig.NumNets())
	for id := range orig.Nets {
		n := circuit.NetID(id)
		target, _, isConst, _, ok := res.Resolve(n)
		optID[id] = circuit.NoNet
		if !ok || isConst {
			continue
		}
		tid, found := res.Optimized.NetByName(orig.Net(target).Name)
		if !found {
			return fmt.Errorf("fate target %q missing", orig.Net(target).Name)
		}
		optID[id] = tid
	}
	if err := plain.ResetConsistent(nil); err != nil {
		return err
	}
	if err := opt.ResetConsistent(nil); err != nil {
		return err
	}
	for v, vec := range vecs.Bits {
		if err := plain.ApplyVector(vec); err != nil {
			return err
		}
		if err := opt.ApplyVector(vec); err != nil {
			return err
		}
		for id := range orig.Nets {
			n := circuit.NetID(id)
			_, invert, isConst, constVal, ok := res.Resolve(n)
			if !ok {
				continue
			}
			got := constVal
			if !isConst {
				got = opt.Final(optID[id]) != invert
			}
			if want := plain.Final(n); got != want {
				return fmt.Errorf("vector %d: net %s resolves to %v, plain engine settles %v",
					v, orig.Nets[id].Name, got, want)
			}
		}
	}
	return nil
}
