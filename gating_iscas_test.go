// Facade tests for the activity-gated execution strategy and the
// level-fusion planner pass: gated execution (with and without fusion)
// must be bit-for-bit identical to sequential execution on every
// benchmark circuit under the streams gating cares about — repeated
// vectors (everything skippable) and single-bit deltas (one input cone
// active) — and a fused plan must actually delete barriers while
// staying clean under the replica rule V015. The chaos leg drives a
// panic into the bookkeeping of a level the gates are about to skip.
package udsim

import (
	"testing"

	"udsim/internal/resilience/chaos"
	"udsim/internal/vectors"
	"udsim/internal/verify"
)

// gatingStream builds the stream the gated engine must survive: a random
// base vector, immediate repeats (a fully idle diff), a walk of
// single-bit deltas (exactly one input cone active per vector), another
// repeat run, then a fresh random vector (everything active at once).
func gatingStream(c *Circuit, seed int64) *vectors.Set {
	width := len(c.Inputs)
	r := vectors.Random(2, width, seed)
	base, fresh := r.Bits[0], r.Bits[1]
	s := &vectors.Set{Width: width}
	add := func(v []bool) { s.Bits = append(s.Bits, append([]bool(nil), v...)) }
	add(base)
	add(base) // repeat: no input toggles at all
	add(base)
	for i := 0; i < width; i += 1 + width/8 { // single-bit deltas
		base[i] = !base[i]
		add(base)
	}
	add(base)  // repeat after the walk
	add(fresh) // fully random step: worst-case diff
	add(fresh)
	return s
}

// TestGatedDeterminismISCAS compares the activity-gated strategy — plain
// and level-fused — against the sequential baseline on every synthesized
// ISCAS-85 profile, at worker counts {1, 2, 4}, over the repeat/delta
// stream: identical finals on every net after every vector and identical
// primary-output waveforms (a skipped cone must read back its held
// value, not a stale or unflattened field).
func TestGatedDeterminismISCAS(t *testing.T) {
	names := ISCAS85Names()
	if testing.Short() {
		names = []string{"c432", "c1908", "c6288"}
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			c, err := ISCAS85(name)
			if err != nil {
				t.Fatal(err)
			}
			vecs := gatingStream(c, 1990)
			ref, err := openParallelSim(c)
			if err != nil {
				t.Fatal(err)
			}
			for _, fused := range []bool{false, true} {
				for _, w := range []int{1, 2, 4} {
					opts := []Option{WithExec(ExecActivityGated, w)}
					label := "plain"
					if fused {
						opts = append(opts, WithLevelFusion())
						label = "fused"
					}
					gt, err := openParallelSim(c, opts...)
					if err != nil {
						t.Fatalf("%s workers=%d: %v", label, w, err)
					}
					if got := gt.ExecStrategy(); got != ExecActivityGated {
						t.Fatalf("%s workers=%d: strategy %v, want %v", label, w, got, ExecActivityGated)
					}
					compareParallel(t, ref, gt, vecs, w)
					gt.Close()
				}
			}
		})
	}
}

// TestGatedSkipsAreObservable pins the gating counters: a repeated
// vector must skip shard slices (the observer's skip counter moves) and
// the decide tallies must report skipped levels, while a fresh random
// vector keeps everything running.
func TestGatedSkipsAreObservable(t *testing.T) {
	c, err := ISCAS85("c1908")
	if err != nil {
		t.Fatal(err)
	}
	ob := NewObserver(ObserverConfig{})
	gt, err := openParallelSim(c, WithExec(ExecActivityGated, 2), WithObserver(ob))
	if err != nil {
		t.Fatal(err)
	}
	defer gt.Close()
	if err := gt.ResetConsistent(nil); err != nil {
		t.Fatal(err)
	}
	vec := vectors.Random(1, len(c.Inputs), 7).Bits[0]
	if err := gt.Apply(vec); err != nil { // first vector: everything runs
		t.Fatal(err)
	}
	if skipped := ob.Snapshot().ShardsSkipped; skipped != 0 {
		t.Fatalf("first vector skipped %d shard slices, want 0", skipped)
	}
	if err := gt.Apply(vec); err != nil { // identical vector: idle diff
		t.Fatal(err)
	}
	snap := ob.Snapshot()
	if snap.ShardsSkipped == 0 {
		t.Fatal("repeated vector skipped no shard slices")
	}
	vectors2, run, skippedLevels := gt.s.GatingLevels()
	if vectors2 != 2 {
		t.Fatalf("gating decisions = %d, want 2", vectors2)
	}
	if skippedLevels == 0 {
		t.Fatal("repeated vector skipped no levels")
	}
	if run == 0 {
		t.Fatal("no levels ran at all")
	}
}

// TestLevelFusionDeletesBarriers checks the fusion pass has teeth on the
// deep profiles — the fused plan must have at least 30% fewer levels
// (each level is one barrier crossing per worker) — and that the fused
// plan's exported assignment carries replicated cones for rule V015,
// which must then report the plan clean.
func TestLevelFusionDeletesBarriers(t *testing.T) {
	// Measured reductions on these deep profiles: c880 24→13 (46%),
	// c1355 27→11 (59%), c1908 40→28 (30%). The assertion keeps slack
	// below the measured values because the fusion budget derives from
	// CalibrateBarrier, which varies with machine load.
	for _, name := range []string{"c880", "c1355", "c1908"} {
		t.Run(name, func(t *testing.T) {
			c, err := ISCAS85(name)
			if err != nil {
				t.Fatal(err)
			}
			plain, err := openParallelSim(c, WithExec(ExecSharded, 2))
			if err != nil {
				t.Fatal(err)
			}
			defer plain.Close()
			fused, err := openParallelSim(c, WithExec(ExecSharded, 2), WithLevelFusion())
			if err != nil {
				t.Fatal(err)
			}
			defer fused.Close()

			before := plain.s.ExecPlan().Stats().Levels
			st := fused.s.ExecPlan().Stats()
			if st.Levels > before*3/4 {
				t.Errorf("fusion left %d of %d levels (>75%%); barriers deleted = %d",
					st.Levels, before, st.BarriersDeleted)
			}
			if st.BarriersDeleted == 0 || st.FusedLevels == 0 {
				t.Errorf("fusion stats empty: %+v", st)
			}

			spec := fused.s.Spec()
			if spec.Shards == nil || spec.Shards.Aug == nil || len(spec.Shards.Aug.Replicas) == 0 {
				t.Fatal("fused plan exports no replicas; rule V015 has nothing to check")
			}
			rep, err := Verify(fused, VerifyOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if n := rep.Count(verify.SevError); n != 0 {
				t.Fatalf("fused plan has %d verification errors:\n%v", n, rep)
			}
		})
	}
}

// TestChaosGatedSkippedShard is the gating leg of the chaos suite: the
// injector fires in the per-level bookkeeping *before* the gate check,
// so a panic planted at a level the repeat-vector diff is about to skip
// must still be absorbed by the guard — degrade to sequential replay
// with finals bit-identical to an unguarded sequential engine.
func TestChaosGatedSkippedShard(t *testing.T) {
	for _, name := range chaosCircuits() {
		t.Run(name, func(t *testing.T) {
			c, err := ISCAS85(name)
			if err != nil {
				t.Fatal(err)
			}
			// Repeats of one vector: from the second vector on, every level
			// is gate-skipped, so run 3's injection lands in skipped-shard
			// bookkeeping.
			vec := vectors.Random(1, len(c.Inputs), 808).Bits[0]
			vecs := [][]bool{vec, vec, vec, vec, vec, vec}
			inj := chaos.PanicAt(3, 1, 0)
			ob := NewObserver(ObserverConfig{})
			eng, err := Open(c, TechParallel,
				WithGuard(chaosPolicy()),
				WithFaultInjection(inj),
				WithExec(ExecActivityGated, 2),
				WithLevelFusion(),
				WithObserver(ob))
			if err != nil {
				t.Fatal(err)
			}
			g := eng.(*GuardedSim)
			defer g.Close()
			if err := g.ResetConsistent(nil); err != nil {
				t.Fatal(err)
			}
			if err := g.ApplyStream(vecs); err != nil {
				t.Fatalf("guarded gated stream did not absorb the panic: %v", err)
			}
			if !inj.Fired() {
				t.Fatal("panic injector never fired")
			}
			if !g.Degraded() {
				t.Fatal("panic in skipped-shard bookkeeping did not quarantine the plan")
			}
			if f := g.LastFault(); f == nil || f.Kind != FaultPanic {
				t.Fatalf("LastFault = %v, want a panic fault", f)
			}
			checkFinals(t, g, referenceFinals(t, c, TechParallel, vecs))
			if snap := ob.Snapshot(); snap.Guard.Panics != 1 || snap.Guard.Quarantines != 1 {
				t.Fatalf("guard counters: %+v, want 1 panic / 1 quarantine", snap.Guard)
			}
		})
	}
}
