package udsim

import (
	"fmt"
	"testing"

	"udsim/internal/vectors"
)

// Ablation benchmarks for the design choices DESIGN.md calls out. They do
// not correspond to paper tables; they answer "what if" questions about
// the implementation.

// BenchmarkAblationWordWidth varies the parallel technique's logical word
// width on the deep multiplier: W=32 matches the paper's machine, W=64
// halves the word count per field, W=8 forces many-word fields. The
// paper's Fig. 8 point — per-gate cost grows faster than linearly in the
// word count — shows up directly.
func BenchmarkAblationWordWidth(b *testing.B) {
	for _, w := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("c6288/W%d", w), func(b *testing.B) {
			c, err := ISCAS85("c6288")
			if err != nil {
				b.Fatal(err)
			}
			e, err := openParallelSim(c, WithWordBits(w))
			if err != nil {
				b.Fatal(err)
			}
			if err := e.ResetConsistent(nil); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(e.WordsPerField()), "words/field")
			vecs := vectors.Random(benchVecPool, len(e.Circuit().Inputs), 1990)
			runVectors(b, e, vecs)
		})
	}
}

// BenchmarkAblationMonitorSet varies the PC-set method's monitored-net
// set: monitoring everything forces zero-insertion on every net,
// enlarging the initialization code — the §2 trade-off between
// observability and work.
func BenchmarkAblationMonitorSet(b *testing.B) {
	c, err := ISCAS85("c1908")
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name    string
		monitor func(*Circuit) []NetID
	}{
		{"outputs", func(c *Circuit) []NetID { return nil }},
		{"all-nets", func(c *Circuit) []NetID {
			ids := make([]NetID, c.NumNets())
			for i := range ids {
				ids[i] = NetID(i)
			}
			return ids
		}},
	}
	for _, tc := range cases {
		b.Run("c1908/"+tc.name, func(b *testing.B) {
			e, err := openPCSetSim(c, tc.monitor(c.Normalize()))
			if err != nil {
				b.Fatal(err)
			}
			if err := e.ResetConsistent(nil); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(e.CodeSize()), "instrs")
			vecs := vectors.Random(benchVecPool, len(e.Circuit().Inputs), 1990)
			runVectors(b, e, vecs)
		})
	}
}

// BenchmarkFaultSim measures parallel stuck-at fault grading throughput:
// one op grades the whole fault universe of c432 against 64 vectors.
func BenchmarkFaultSim(b *testing.B) {
	c, err := ISCAS85("c432")
	if err != nil {
		b.Fatal(err)
	}
	fs, err := NewFaultSim(c)
	if err != nil {
		b.Fatal(err)
	}
	faults := AllFaults(fs.Circuit())
	vecs := vectors.Random(64, len(fs.Circuit().Inputs), 1990).Bits
	b.ReportMetric(float64(len(faults)), "faults")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Run(faults, vecs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkActivityOverhead measures the cost of switching-activity
// collection on top of plain simulation.
func BenchmarkActivityOverhead(b *testing.B) {
	c, err := ISCAS85("c880")
	if err != nil {
		b.Fatal(err)
	}
	vecs := vectors.Random(64, 60, 1990).Bits
	b.Run("sim-only", func(b *testing.B) {
		e, err := openParallelSim(c)
		if err != nil {
			b.Fatal(err)
		}
		_ = e.ResetConsistent(nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, vec := range vecs {
				if err := e.Apply(vec); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("with-activity", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ProfileActivity(c, vecs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSequentialCycle measures the per-clock-cycle cost of the
// flip-flop-broken construction over two different cores.
func BenchmarkSequentialCycle(b *testing.B) {
	for _, tech := range []string{"parallel", "lcc"} {
		b.Run("counter16/"+tech, func(b *testing.B) {
			seq, err := NewSequential(Counter(16), func(c *Circuit) (Engine, error) {
				return NewEngine(tech, c)
			})
			if err != nil {
				b.Fatal(err)
			}
			in := []bool{true}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := seq.Step(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
