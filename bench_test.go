// Benchmarks reproducing the paper's tables as testing.B micro-benchmarks.
// Each BenchmarkFigNN family times the engines that appear in the paper's
// figure of the same number, per synthesized ISCAS-85 profile circuit; the
// cmd/udbench harness prints the same data as whole-table wall-clock runs.
//
// Time per op is the cost of one input vector. The interesting quantity is
// the *ratio* between engines on the same circuit (who wins, by what
// factor), which is what the paper's tables report.
package udsim

import (
	"fmt"
	"testing"

	"udsim/internal/vectors"
)

// benchCircuits is a representative subset spanning the paper's range:
// small/shallow, medium, deep multi-word, and the 4-word multiplier.
var benchCircuits = []string{"c432", "c880", "c1908", "c6288"}

const benchVecPool = 256

func mustEngine(b *testing.B, tech, circuitName string) (Engine, *vectors.Set) {
	b.Helper()
	c, err := ISCAS85(circuitName)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine(tech, c)
	if err != nil {
		b.Fatal(err)
	}
	if err := e.ResetConsistent(nil); err != nil {
		b.Fatal(err)
	}
	return e, vectors.Random(benchVecPool, len(e.Circuit().Inputs), 1990)
}

func runVectors(b *testing.B, e Engine, vecs *vectors.Set) {
	b.Helper()
	apply := e.Apply
	if ev, ok := e.(*EventSim); ok {
		apply = ev.ApplyFast // benchmark the untraced baseline, like the paper
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := apply(vecs.Bits[i%benchVecPool]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig19 times the four engines of Fig. 19 on each circuit:
// interpreted 3-valued, interpreted 2-valued, PC-set, parallel.
func BenchmarkFig19(b *testing.B) {
	for _, ckt := range benchCircuits {
		for _, tech := range []string{"event3", "event2", "pcset", "parallel"} {
			b.Run(fmt.Sprintf("%s/%s", ckt, tech), func(b *testing.B) {
				e, vecs := mustEngine(b, tech, ckt)
				runVectors(b, e, vecs)
			})
		}
	}
}

// BenchmarkFig20 times bit-field trimming against the plain parallel
// technique on the multi-word circuits where it matters.
func BenchmarkFig20(b *testing.B) {
	for _, ckt := range []string{"c1908", "c6288"} {
		for _, tech := range []string{"parallel", "parallel-trim"} {
			b.Run(fmt.Sprintf("%s/%s", ckt, tech), func(b *testing.B) {
				e, vecs := mustEngine(b, tech, ckt)
				runVectors(b, e, vecs)
			})
		}
	}
}

// BenchmarkFig23 times the two shift-elimination algorithms against the
// unoptimized parallel technique.
func BenchmarkFig23(b *testing.B) {
	for _, ckt := range []string{"c432", "c1908", "c6288"} {
		for _, tech := range []string{"parallel", "parallel-pt", "parallel-cb"} {
			b.Run(fmt.Sprintf("%s/%s", ckt, tech), func(b *testing.B) {
				e, vecs := mustEngine(b, tech, ckt)
				runVectors(b, e, vecs)
			})
		}
	}
}

// BenchmarkFig24 times path tracing combined with trimming.
func BenchmarkFig24(b *testing.B) {
	for _, ckt := range []string{"c1908", "c6288"} {
		for _, tech := range []string{"parallel", "parallel-pt", "parallel-pt-trim"} {
			b.Run(fmt.Sprintf("%s/%s", ckt, tech), func(b *testing.B) {
				e, vecs := mustEngine(b, tech, ckt)
				runVectors(b, e, vecs)
			})
		}
	}
}

// BenchmarkZeroDelay times the §5 zero-delay side study: interpreted
// levelized simulation versus compiled LCC.
func BenchmarkZeroDelay(b *testing.B) {
	for _, ckt := range []string{"c880", "c6288"} {
		for _, tech := range []string{"lcc"} {
			b.Run(fmt.Sprintf("%s/%s", ckt, tech), func(b *testing.B) {
				e, vecs := mustEngine(b, tech, ckt)
				runVectors(b, e, vecs)
			})
		}
		b.Run(fmt.Sprintf("%s/interp", ckt), func(b *testing.B) {
			c, err := ISCAS85(ckt)
			if err != nil {
				b.Fatal(err)
			}
			// The interpreted zero-delay simulator is internal; reach it
			// through the event-driven package's levelized interpreter.
			z, err := NewZeroDelayInterpreted(c)
			if err != nil {
				b.Fatal(err)
			}
			vecs := vectors.Random(benchVecPool, len(z.Circuit().Inputs), 1990)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := z.ApplyVector(vecs.Bits[i%benchVecPool]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDataParallel times the PC-set method's 64-lane mode (§3): one
// op simulates 64 independent vectors, so compare ns/op here against
// 64× the scalar pcset ns/op from BenchmarkFig19.
func BenchmarkDataParallel(b *testing.B) {
	for _, ckt := range []string{"c432", "c6288"} {
		b.Run(fmt.Sprintf("%s/pcset-64lane", ckt), func(b *testing.B) {
			c, err := ISCAS85(ckt)
			if err != nil {
				b.Fatal(err)
			}
			e, err := openPCSetSim(c, nil)
			if err != nil {
				b.Fatal(err)
			}
			if err := e.ResetConsistent(nil); err != nil {
				b.Fatal(err)
			}
			vecs := vectors.Random(benchVecPool, len(e.Circuit().Inputs), 1990)
			packed := vecs.Packed()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.ApplyLanes(packed[i%len(packed)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompile measures compiler throughput: building the straight-
// line program for the largest circuit with each technique.
func BenchmarkCompile(b *testing.B) {
	c, err := ISCAS85("c6288")
	if err != nil {
		b.Fatal(err)
	}
	for _, tech := range []string{"pcset", "parallel", "parallel-pt-trim"} {
		b.Run(tech, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := NewEngine(tech, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkObservedStream times the streaming loop with and without a
// runtime observer attached — the observability layer's overhead budget.
// Run with -benchmem: both variants must report 0 allocs/op, and the
// observed ns/op should sit within a few percent of the bare ns/op.
func BenchmarkObservedStream(b *testing.B) {
	for _, observed := range []bool{false, true} {
		name := "bare"
		if observed {
			name = "observed"
		}
		b.Run(fmt.Sprintf("c1908/sharded/%s", name), func(b *testing.B) {
			c, err := ISCAS85("c1908")
			if err != nil {
				b.Fatal(err)
			}
			opts := []Option{WithExec(ExecSharded, 0)}
			if observed {
				opts = append(opts, WithObserver(NewObserver(ObserverConfig{})))
			}
			e, err := Open(c, TechParallel, opts...)
			if err != nil {
				b.Fatal(err)
			}
			defer e.(Closer).Close()
			if err := e.ResetConsistent(nil); err != nil {
				b.Fatal(err)
			}
			se := e.(Streamer)
			vecs := vectors.Random(benchVecPool, len(e.Circuit().Inputs), 1990)
			if err := se.ApplyStream(vecs.Bits); err != nil { // warm-up
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := se.ApplyStream(vecs.Bits); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelExec times the multicore execution strategies on the
// vector-stream path. One op is a whole 256-vector stream. The steady
// state must not allocate: run with -benchmem and expect 0 allocs/op for
// every strategy (clones and worker buffers are built during warm-up).
func BenchmarkParallelExec(b *testing.B) {
	cfgs := []struct {
		name     string
		strategy ExecStrategy
	}{
		{"seq", ExecSequential},
		{"sharded", ExecSharded},
		{"batch", ExecVectorBatch},
	}
	for _, ckt := range []string{"c1908", "c6288"} {
		for _, cfg := range cfgs {
			b.Run(fmt.Sprintf("%s/%s", ckt, cfg.name), func(b *testing.B) {
				c, err := ISCAS85(ckt)
				if err != nil {
					b.Fatal(err)
				}
				e, err := openParallelSim(c, WithExec(cfg.strategy, 0))
				if err != nil {
					b.Fatal(err)
				}
				defer e.Close()
				if err := e.ResetConsistent(nil); err != nil {
					b.Fatal(err)
				}
				vecs := vectors.Random(benchVecPool, len(e.Circuit().Inputs), 1990)
				if err := e.ApplyStream(vecs.Bits); err != nil { // warm-up
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := e.ApplyStream(vecs.Bits); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
