package udsim

import (
	"fmt"
	"time"

	"udsim/internal/native"
	"udsim/internal/resilience"
)

// Native backend: Open(c, tech, WithNativeBackend()) — or WithExec with
// ExecNative — compiles the circuit in process as usual, then `go
// build`s the engine's validated codegen output out of process and runs
// it as a supervised subprocess speaking a length-prefixed, CRC-checked
// vector protocol. The in-process engine stays alive as the guarded
// fallback: any child failure (crash, stall, truncated or corrupted
// frame) becomes a typed *EngineFault, the supervisor respawns with
// capped exponential backoff, and after GuardPolicy.MaxRetries the
// child is quarantined and every subsequent vector runs in process —
// never a hang, never a wrong bit.
//
// Settled primary-output values come back from the child; everything
// else (waveforms, non-output finals) is answered by lazily re-applying
// the last vector on the in-process engine — settled values of a
// combinational circuit depend only on the current vector, so the two
// views agree wherever both are defined. (Intermediate waveform steps
// of the lazy re-apply reflect a single-vector history, as after a
// reset.)

// nativeOpts carries the native-backend knobs inside options. The chaos
// fields are unexported drill seams used by the root chaos tests and
// cmd/udchaos.
type nativeOpts struct {
	set     bool
	pol     GuardPolicy
	polSet  bool
	chaos   native.ChildChaos
	disrupt native.Disruptor
	goTool  string
}

// nativeMode reports whether Open should route to the native backend:
// WithNativeBackend/WithNativePolicy, or WithExec(ExecNative, ...).
func (o *options) nativeMode() bool {
	return o.nat.set || (o.execSet && o.exec == ExecNative)
}

// checkNative rejects option combinations the native backend cannot
// honor and strips the intercepted ExecNative strategy so the
// in-process engine is configured sequentially underneath.
func (o *options) checkNative(technique Technique) error {
	switch technique {
	case TechParallel, TechPCSet:
	default:
		return fmt.Errorf("udsim: the native backend requires a compiled technique (parallel or pcset), not %v", technique)
	}
	if o.guardSet || o.inject != nil {
		return fmt.Errorf("udsim: WithGuard cannot be combined with the native backend (the subprocess supervisor is the guard)")
	}
	if o.resub {
		return fmt.Errorf("udsim: WithResubstitution cannot be combined with the native backend")
	}
	if o.execSet && o.exec == ExecNative {
		// Remember the mode before stripping the strategy: nativeMode()
		// must keep answering true after the in-process engine is
		// configured sequentially underneath.
		o.nat.set = true
		o.exec, o.execSet, o.execWorkers = ExecSequential, false, 0
	}
	if !o.nat.polSet {
		o.nat.pol = DefaultGuardPolicy()
	}
	return nil
}

// WithNativeBackend runs the engine's validated codegen output as a
// supervised native-code subprocess with the in-process engine as
// guarded fallback (see the package comment above), under
// DefaultGuardPolicy. Open then returns a *NativeSim. Compiled
// techniques only; requires a go toolchain on PATH at Open time.
func WithNativeBackend() Option {
	return func(o *options) { o.nat.set = true }
}

// WithNativePolicy is WithNativeBackend with explicit supervision
// knobs: LevelBudget bounds each batch exchange, MaxRetries bounds
// respawns before quarantine, RetryBackoff paces them, and
// CrossCheckEvery samples the child's outputs against the in-process
// engine.
func WithNativePolicy(p GuardPolicy) Option {
	return func(o *options) { o.nat.set, o.nat.pol, o.nat.polSet = true, p, true }
}

// Native chaos types, re-exported for drills (cmd/udchaos) and tests —
// the native analogue of WithFaultInjection's injector seam.
type (
	// NativeChildChaos bakes deterministic misbehavior into the
	// generated child: crash, wedge, truncate, corrupt or flood at a
	// 1-based batch coordinate. The zero value is a well-behaved child.
	NativeChildChaos = native.ChildChaos
	// NativeDisruptor attacks a well-behaved child from the parent side
	// of the protocol, once per batch (kill mid-batch, corrupt the
	// outgoing frame). See internal/native for implementations.
	NativeDisruptor = native.Disruptor
)

// WithNativeChaos bakes deterministic misbehavior into the generated
// child (drills and tests only; implies WithNativeBackend).
func WithNativeChaos(ch NativeChildChaos) Option {
	return func(o *options) { o.nat.set, o.nat.chaos = true, ch }
}

// WithNativeDisruptor attaches a parent-side chaos injector to the
// batch path (drills and tests only; implies WithNativeBackend).
func WithNativeDisruptor(d NativeDisruptor) Option {
	return func(o *options) { o.nat.set, o.nat.disrupt = true, d }
}

// wrapNativeParallel builds the native backend over a compiled
// parallel-technique engine.
func wrapNativeParallel(p *ParallelSim, o options) (Engine, error) {
	init, sim := p.s.Programs()
	return newNativeSim(p, native.Config{
		Technique: TechParallel.String(),
		Layout:    native.ParallelLayout(p.s, p.s.Circuit()),
		Init:      init,
		Sim:       sim,
	}, p.s.Circuit(), o)
}

// wrapNativePCSet builds the native backend over a compiled PC-set
// engine.
func wrapNativePCSet(p *PCSetSim, o options) (Engine, error) {
	init, sim := p.s.Programs()
	return newNativeSim(p, native.Config{
		Technique: TechPCSet.String(),
		Layout:    native.PCSetLayout(p.s, p.s.Circuit()),
		Init:      init,
		Sim:       sim,
	}, p.s.Circuit(), o)
}

func newNativeSim(base nativeBase, cfg native.Config, c *Circuit, o options) (Engine, error) {
	cfg.Engine = "native/" + cfg.Technique
	cfg.CircuitHash = native.HashBench(c)
	cfg.Policy = o.nat.pol
	cfg.GoTool = o.nat.goTool
	cfg.Chaos = o.nat.chaos
	cfg.Disrupt = o.nat.disrupt
	cfg.Obs = o.observer
	sup, err := native.New(cfg)
	if err != nil {
		base.Close()
		return nil, fmt.Errorf("udsim: native backend: %w", err)
	}
	n := &NativeSim{
		base:   base,
		sup:    sup,
		pol:    o.nat.pol,
		obs:    o.observer,
		outIdx: make(map[NetID]int, len(c.Outputs)),
	}
	for i, id := range c.Outputs {
		n.outIdx[id] = i
	}
	return n, nil
}

// nativeBase is the in-process fallback surface NativeSim delegates to;
// both compiled wrappers satisfy it.
type nativeBase interface {
	Engine
	Tracer
	Closer
	Streamer
	Introspector
	Observable
}

// NativeSim is a compiled engine whose vectors run in a supervised
// native-code subprocess — the result of Open with WithNativeBackend.
// It implements the same optional interfaces as the engine it wraps;
// waveform reads and non-output finals are answered by the in-process
// engine after a lazy re-apply of the last vector.
//
// Like the engines it wraps, a NativeSim is not safe for concurrent
// use.
type NativeSim struct {
	base nativeBase
	sup  *native.Supervisor
	pol  GuardPolicy
	obs  *Observer

	outIdx  map[NetID]int
	po      []byte // packed child outputs of the last vector, nil if none
	lastVec []bool // last applied vector, for the lazy base re-apply
	synced  bool   // base state reflects lastVec

	applied   int64
	degraded  bool
	lastFault *EngineFault
}

// EngineName identifies the wrapped configuration.
func (n *NativeSim) EngineName() string { return n.base.EngineName() + "+native" }

// Circuit returns the (normalized) circuit.
func (n *NativeSim) Circuit() *Circuit { return n.base.Circuit() }

// Depth returns the circuit depth in gate delays.
func (n *NativeSim) Depth() int { return n.base.Depth() }

// ResetConsistent initializes the in-process state (nil = all-zeros
// assignment) and forgets the child's last outputs. The child itself
// needs no reset: it recomputes every vector from the init program.
func (n *NativeSim) ResetConsistent(inputs []bool) error {
	n.po, n.lastVec, n.synced = nil, nil, true
	return n.base.ResetConsistent(inputs)
}

// Apply simulates one input vector — a one-vector batch.
func (n *NativeSim) Apply(vec []bool) error { return n.ApplyStream([][]bool{vec}) }

// ApplyStream simulates a vector stream on the native child. On a child
// fault the supervisor respawns and replays the batch (settled outputs
// depend only on the vector, so replay is safe); if the child is
// quarantined the whole batch falls back to the in-process engine and
// the stream still completes with identical settled outputs — the fault
// is recorded on LastFault and the observer, not surfaced.
func (n *NativeSim) ApplyStream(vecs [][]bool) error {
	if len(vecs) == 0 {
		return nil
	}
	if n.degraded {
		return n.applyFallback(vecs)
	}
	res, err := n.sup.RunBatch(vecs)
	if err != nil {
		f, ok := resilience.AsFault(err)
		if !ok {
			return err
		}
		n.lastFault = f
		n.degraded = true
		if n.obs != nil {
			n.obs.AddNativeFallback()
		}
		return n.applyFallback(vecs)
	}
	last := vecs[len(vecs)-1]
	n.po = res[len(res)-1]
	n.lastVec = append(n.lastVec[:0], last...)
	n.synced = false
	before := n.applied
	n.applied += int64(len(vecs))
	if k := int64(n.pol.CrossCheckEvery); k > 0 && before/k != n.applied/k {
		return n.crossCheck()
	}
	return nil
}

// applyFallback runs a batch on the in-process engine (the degraded
// path).
func (n *NativeSim) applyFallback(vecs [][]bool) error {
	if err := n.base.ApplyStream(vecs); err != nil {
		return err
	}
	n.po = nil
	n.lastVec = append(n.lastVec[:0], vecs[len(vecs)-1]...)
	n.synced = true
	n.applied += int64(len(vecs))
	return nil
}

// crossCheck replays the last vector on the in-process engine and
// compares every primary output against the child's bits. A mismatch is
// silent corruption in the native path: the engine degrades to the
// (correct) in-process results permanently and records a
// FaultCorruption — the caller keeps bit-identical outputs throughout.
func (n *NativeSim) crossCheck() error {
	if n.obs != nil {
		n.obs.AddGuardCrossCheck()
	}
	n.syncBase()
	for _, id := range n.Circuit().Outputs {
		if n.base.Final(id) != native.Bit(n.po, n.outIdx[id]) {
			f := resilience.Corruption(n.EngineName(), int(id))
			n.lastFault = f
			n.degraded = true
			n.po = nil
			if n.obs != nil {
				n.obs.AddGuardMismatch()
				n.obs.AddGuardFault(f.Kind)
				n.obs.AddNativeFallback()
			}
			return nil
		}
	}
	return nil
}

// syncBase lazily brings the in-process engine up to the last vector.
func (n *NativeSim) syncBase() {
	if n.synced || n.lastVec == nil {
		return
	}
	n.base.Apply(n.lastVec)
	n.synced = true
}

// Final returns the settled value of a net: primary outputs straight
// from the child's last results frame, everything else from the
// in-process engine after a lazy re-apply.
func (n *NativeSim) Final(id NetID) bool {
	if n.po != nil {
		if i, ok := n.outIdx[id]; ok {
			return native.Bit(n.po, i)
		}
	}
	n.syncBase()
	return n.base.Final(id)
}

// ValueAt returns net id's value at time t from the in-process engine
// after a lazy re-apply of the last vector (the child keeps no
// waveforms).
func (n *NativeSim) ValueAt(id NetID, t int) (bool, bool) {
	n.syncBase()
	return n.base.ValueAt(id, t)
}

// BlockFinal returns the final value of a net; the native backend never
// uses vector batching, so only block 0 is meaningful.
func (n *NativeSim) BlockFinal(k int, id NetID) bool {
	if k == 0 {
		return n.Final(id)
	}
	return n.base.BlockFinal(k, id)
}

// ExecStrategy returns ExecNative while the child serves and the
// fallback engine's strategy after a quarantine degraded it.
func (n *NativeSim) ExecStrategy() ExecStrategy {
	if n.degraded {
		return n.base.ExecStrategy()
	}
	return ExecNative
}

// CodeSize returns the number of compiled straight-line instructions.
func (n *NativeSim) CodeSize() int { return n.base.CodeSize() }

// Observe attaches a runtime observer (nil detaches): the in-process
// engine's counters, the supervisor's udsim_native_* counters and the
// facade's cross-check counters all feed it.
func (n *NativeSim) Observe(o *Observer) {
	n.obs = o
	n.sup.SetObserver(o)
	n.base.Observe(o)
}

// Snapshot returns the attached observer's counters, nil without one.
func (n *NativeSim) Snapshot() *Snapshot { return n.base.Snapshot() }

// Close shuts the child down, removes its build workspace and releases
// the in-process engine.
func (n *NativeSim) Close() {
	n.sup.Close()
	n.base.Close()
}

// Degraded reports whether the native child has been quarantined (or a
// cross-check mismatch retired it) and vectors now run in process.
func (n *NativeSim) Degraded() bool { return n.degraded }

// LastFault returns the most recent fault the supervisor or the
// cross-check recorded — including faults recovered by respawn or
// fallback and never surfaced — or nil.
func (n *NativeSim) LastFault() *EngineFault {
	if f := n.sup.LastFault(); f != nil && n.lastFault == nil {
		return f
	}
	return n.lastFault
}

// Policy returns the supervision configuration.
func (n *NativeSim) Policy() GuardPolicy { return n.pol }

// Supervisor state names the child's lifecycle position
// ("serving", "quarantined", ...) for status surfaces.
func (n *NativeSim) SupervisorState() string { return n.sup.State().String() }

// BuildTime returns the out-of-process `go build` wall time.
func (n *NativeSim) BuildTime() time.Duration { return n.sup.BuildTime() }

// Ping sends a liveness probe to the child and waits for the echo.
func (n *NativeSim) Ping() error {
	if n.degraded {
		return n.LastFault()
	}
	return n.sup.Ping()
}

// Interface conformance.
var (
	_ Engine       = (*NativeSim)(nil)
	_ Tracer       = (*NativeSim)(nil)
	_ Closer       = (*NativeSim)(nil)
	_ Streamer     = (*NativeSim)(nil)
	_ Introspector = (*NativeSim)(nil)
	_ Observable   = (*NativeSim)(nil)
)
