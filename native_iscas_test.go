package udsim

import (
	"os/exec"
	"runtime"
	"strings"
	"testing"

	"udsim/internal/vectors"
)

// The native-backend acceptance suite: every ISCAS-85 profile circuit,
// both compiled techniques, simulated end to end through the supervised
// native-code subprocess — outputs bit-identical to the in-process
// engines, no degradation, a serving child at the end. Build time
// dominates (an out-of-process `go build` per circuit and technique),
// so -short trims to three circuits like the rest of the ISCAS suites.

// requireGoTool skips when the go toolchain is not on PATH — the same
// guard the codegen round-trip tests use, since the native backend
// builds its child out of process.
func requireGoTool(t *testing.T) {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH; cannot build the native child")
	}
}

func nativeCircuits() []string {
	if testing.Short() {
		return []string{"c432", "c880", "c1908"}
	}
	return ISCAS85Names()
}

// nativeFinalsMatch compares every net's settled value against the
// sequential reference (primary outputs come from the child's results
// frame, everything else through the lazy base re-apply).
func nativeFinalsMatch(t *testing.T, n *NativeSim, want []bool) {
	t.Helper()
	for i := range want {
		if got := n.Final(NetID(i)); got != want[i] {
			t.Fatalf("net %d settled to %v through the native backend, sequential reference %v",
				i, got, want[i])
		}
	}
}

func TestNativeISCASBitIdentity(t *testing.T) {
	requireGoTool(t)
	for _, name := range nativeCircuits() {
		name := name
		t.Run(name, func(t *testing.T) {
			c, err := ISCAS85(name)
			if err != nil {
				t.Fatal(err)
			}
			vecs := vectors.Random(24, len(c.Inputs), 808).Bits
			for _, tech := range []Technique{TechParallel, TechPCSet} {
				t.Run(tech.String(), func(t *testing.T) {
					eng, err := Open(c, tech, WithNativeBackend())
					if err != nil {
						t.Fatal(err)
					}
					n, ok := eng.(*NativeSim)
					if !ok {
						t.Fatalf("Open with WithNativeBackend returned %T, want *NativeSim", eng)
					}
					defer n.Close()
					t.Logf("child built in %v", n.BuildTime())
					if err := n.ResetConsistent(nil); err != nil {
						t.Fatal(err)
					}
					// One multi-vector batch, then the tail one vector at a
					// time — both protocol shapes.
					if err := n.ApplyStream(vecs[:len(vecs)-2]); err != nil {
						t.Fatal(err)
					}
					for _, vec := range vecs[len(vecs)-2:] {
						if err := n.Apply(vec); err != nil {
							t.Fatal(err)
						}
					}
					if n.Degraded() {
						t.Fatalf("native backend degraded on a healthy child: %v", n.LastFault())
					}
					if err := n.Ping(); err != nil {
						t.Fatalf("child did not answer the liveness ping: %v", err)
					}
					if got := n.SupervisorState(); got != "serving" {
						t.Fatalf("SupervisorState() = %q after a clean stream, want serving", got)
					}
					if got := n.ExecStrategy(); got != ExecNative {
						t.Fatalf("ExecStrategy() = %v, want ExecNative", got)
					}
					if !strings.HasSuffix(n.EngineName(), "+native") {
						t.Fatalf("EngineName() = %q, want a +native suffix", n.EngineName())
					}
					nativeFinalsMatch(t, n, referenceFinals(t, c, tech, vecs))
				})
			}
		})
	}
}

// TestNativeCrossCheck pins the sampled guard: with CrossCheckEvery set
// the facade replays vectors in process and compares the child's output
// bits — a healthy child passes every check without degrading.
func TestNativeCrossCheck(t *testing.T) {
	requireGoTool(t)
	c, err := ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	pol := DefaultGuardPolicy()
	pol.CrossCheckEvery = 2
	eng, err := Open(c, TechParallel, WithNativePolicy(pol), WithObserver(NewObserver(ObserverConfig{})))
	if err != nil {
		t.Fatal(err)
	}
	n := eng.(*NativeSim)
	defer n.Close()
	if err := n.ResetConsistent(nil); err != nil {
		t.Fatal(err)
	}
	vecs := vectors.Random(8, len(c.Inputs), 909).Bits
	for _, vec := range vecs {
		if err := n.Apply(vec); err != nil {
			t.Fatal(err)
		}
	}
	if n.Degraded() {
		t.Fatalf("cross-check degraded a healthy child: %v", n.LastFault())
	}
	snap := n.Snapshot()
	if snap.Guard.CrossChecks != 4 {
		t.Fatalf("CrossChecks = %d after 8 vectors at every-2, want 4", snap.Guard.CrossChecks)
	}
	if snap.Guard.Mismatches != 0 {
		t.Fatalf("Mismatches = %d on a healthy child, want 0", snap.Guard.Mismatches)
	}
}

// TestNativeOptionValidation pins the Open plumbing around the backend.
func TestNativeOptionValidation(t *testing.T) {
	c, err := ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(c, TechEvent3, WithNativeBackend()); err == nil {
		t.Error("WithNativeBackend accepted for an interpreted technique")
	}
	if _, err := Open(c, TechParallel, WithNativeBackend(), WithGuard(DefaultGuardPolicy())); err == nil {
		t.Error("WithNativeBackend accepted together with WithGuard")
	}
	if _, err := Open(c, TechParallel, WithNativeBackend(), WithResubstitution()); err == nil {
		t.Error("WithNativeBackend accepted together with WithResubstitution")
	}
	if s, err := ParseExecStrategy("native"); err != nil || s != ExecNative {
		t.Errorf("ParseExecStrategy(native) = %v, %v; want ExecNative", s, err)
	}

	requireGoTool(t)
	// WithExec(ExecNative) is the flag-shaped spelling of the same mode.
	eng, err := Open(c, TechParallel, WithExec(ExecNative, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.(Closer).Close()
	if _, ok := eng.(*NativeSim); !ok {
		t.Fatalf("Open with WithExec(ExecNative) returned %T, want *NativeSim", eng)
	}
}

// TestNativeCoreCountNote records the benchmark-provenance gate from
// the roadmap: a multicore BENCH baseline needs >= 4 cores; on smaller
// containers the core count goes in the bench note instead. This test
// only logs — the gate is a provenance rule, not a correctness one.
func TestNativeCoreCountNote(t *testing.T) {
	if n := runtime.NumCPU(); n < 4 {
		t.Logf("runtime.NumCPU() = %d: BENCH_r6.json (multicore baseline) stays deferred; core count recorded in the ROADMAP bench note", n)
	} else {
		t.Logf("runtime.NumCPU() = %d: eligible to capture the multicore BENCH_r6.json baseline", n)
	}
}
