package udsim

import (
	"strings"
	"testing"

	"udsim/internal/vectors"
)

// sameEngine drives both engines through the same short stream and
// compares identity (name, depth, code size) and every net's waveform.
func sameEngine(t *testing.T, label string, a, b Engine, vecs *vectors.Set) {
	t.Helper()
	if a.EngineName() != b.EngineName() {
		t.Fatalf("%s: names %q vs %q", label, a.EngineName(), b.EngineName())
	}
	if a.Depth() != b.Depth() {
		t.Fatalf("%s: depths %d vs %d", label, a.Depth(), b.Depth())
	}
	ia, aok := a.(Introspector)
	ib, bok := b.(Introspector)
	if aok != bok || (aok && ia.CodeSize() != ib.CodeSize()) {
		t.Fatalf("%s: code sizes differ", label)
	}
	if err := a.ResetConsistent(nil); err != nil {
		t.Fatal(err)
	}
	if err := b.ResetConsistent(nil); err != nil {
		t.Fatal(err)
	}
	ta, taOK := a.(Tracer)
	tb, _ := b.(Tracer)
	for _, vec := range vecs.Bits {
		if err := a.Apply(vec); err != nil {
			t.Fatal(err)
		}
		if err := b.Apply(vec); err != nil {
			t.Fatal(err)
		}
		for n := 0; n < a.Circuit().NumNets(); n++ {
			id := NetID(n)
			if a.Final(id) != b.Final(id) {
				t.Fatalf("%s: net %d finals differ", label, n)
			}
			if !taOK {
				continue
			}
			for tm := 0; tm <= a.Depth(); tm++ {
				av, aok := ta.ValueAt(id, tm)
				bv, bok := tb.ValueAt(id, tm)
				if av != bv || aok != bok {
					t.Fatalf("%s: net %d t=%d: (%v,%v) vs (%v,%v)", label, n, tm, av, aok, bv, bok)
				}
			}
		}
	}
}

// TestOpenMatchesDeprecatedConstructors asserts the unified Open API and
// the deprecated per-technique constructors build identical engines on
// every benchmark profile circuit.
func TestOpenMatchesDeprecatedConstructors(t *testing.T) {
	for _, name := range ISCAS85Names() {
		c, err := ISCAS85(name)
		if err != nil {
			t.Fatal(err)
		}
		vecs := vectors.Random(4, len(c.Inputs), 42)

		a, err := Open(c, TechParallel, WithTrimming())
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewParallel(c, WithTrimming())
		if err != nil {
			t.Fatal(err)
		}
		sameEngine(t, name+"/parallel", a, b, vecs)

		a2, err := Open(c, TechPCSet)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := NewPCSet(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		sameEngine(t, name+"/pcset", a2, b2, vecs)
	}
}

// TestOpenTechniqueNames asserts every CLI technique name round-trips
// through ParseTechnique + Open.
func TestOpenTechniqueNames(t *testing.T) {
	c, err := ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Techniques() {
		tech, opts, err := ParseTechnique(name)
		if err != nil {
			t.Fatal(err)
		}
		e, err := Open(c, tech, opts...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.HasPrefix(name, tech.String()) {
			t.Errorf("%s parsed to technique %v", name, tech)
		}
		if err := e.ResetConsistent(nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := ParseTechnique("bogus"); err == nil {
		t.Error("expected unknown-technique error")
	}
	if _, err := Open(c, Technique(99)); err == nil {
		t.Error("expected unknown-technique error from Open")
	}
}

// TestOpenRejectsInapplicableOptions asserts the option-applicability
// contract: wrong-technique options error instead of being ignored.
func TestOpenRejectsInapplicableOptions(t *testing.T) {
	c, err := ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		label string
		tech  Technique
		opt   Option
	}{
		{"pcset+WithWordBits", TechPCSet, WithWordBits(8)},
		{"pcset+WithTrimming", TechPCSet, WithTrimming()},
		{"pcset+WithShiftElimination", TechPCSet, WithShiftElimination(PathTracing)},
		{"parallel+WithMonitor", TechParallel, WithMonitor(c.Outputs[0])},
		{"event3+WithExec", TechEvent3, WithExec(ExecSharded, 2)},
		{"event2+WithVerify", TechEvent2, WithVerify()},
		{"lcc+WithObserver", TechLCC, WithObserver(NewObserver(ObserverConfig{}))},
		{"lcc+WithMonitor", TechLCC, WithMonitor(c.Outputs[0])},
	}
	for _, tc := range cases {
		if _, err := Open(c, tc.tech, tc.opt); err == nil {
			t.Errorf("%s: expected rejection", tc.label)
		}
	}
	// The deprecated wrappers enforce the same contract.
	if _, err := NewParallel(c, WithMonitor(c.Outputs[0])); err == nil {
		t.Error("NewParallel accepted WithMonitor")
	}
	if _, err := NewPCSet(c, nil, WithTrimming()); err == nil {
		t.Error("NewPCSet accepted WithTrimming")
	}
	// ... including refusing guard options, which need Open's wrapping.
	if _, err := NewParallel(c, WithGuard(DefaultGuardPolicy())); err == nil {
		t.Error("NewParallel accepted WithGuard")
	}
	if _, err := NewPCSet(c, nil, WithGuard(DefaultGuardPolicy())); err == nil {
		t.Error("NewPCSet accepted WithGuard")
	}
	// WithMonitor through Open replaces NewPCSet's monitor argument.
	mon, err := Open(c, TechPCSet, WithMonitor(c.Outputs...))
	if err != nil {
		t.Fatal(err)
	}
	old, err := NewPCSet(c, append([]NetID(nil), c.Outputs...))
	if err != nil {
		t.Fatal(err)
	}
	sameEngine(t, "pcset/monitor", mon, old, vectors.Random(2, len(c.Inputs), 7))
}

// TestTracerContract is the regression test for the facade asymmetry
// this API carried for a while: ParallelSim.ValueAt hard-coded ok=true
// (even for negative times), while PCSetSim could report unobservable
// nets. Both now route through the engines' Trace contract.
func TestTracerContract(t *testing.T) {
	c, err := ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	par, err := Open(c, TechParallel)
	if err != nil {
		t.Fatal(err)
	}
	pcs, err := Open(c, TechPCSet) // monitor = primary outputs
	if err != nil {
		t.Fatal(err)
	}
	vec := make([]bool, len(c.Inputs))
	for _, e := range []Engine{par, pcs} {
		if err := e.ResetConsistent(nil); err != nil {
			t.Fatal(err)
		}
		if err := e.Apply(vec); err != nil {
			t.Fatal(err)
		}
	}
	pt := par.(Tracer)
	ct := pcs.(Tracer)

	// Negative times belong to the previous vector: never observable,
	// from either engine.
	for n := 0; n < c.NumNets(); n++ {
		if _, ok := pt.ValueAt(NetID(n), -1); ok {
			t.Fatalf("parallel: net %d observable at t=-1", n)
		}
		if _, ok := ct.ValueAt(NetID(n), -1); ok {
			t.Fatalf("pcset: net %d observable at t=-1", n)
		}
	}

	// The parallel technique retains every waveform; the PC-set method
	// leaves some unmonitored net unobservable at early times. The same
	// nets must still be fully observable from the parallel engine.
	hidden := 0
	for n := 0; n < c.NumNets(); n++ {
		for tm := 0; tm <= par.Depth(); tm++ {
			if _, ok := pt.ValueAt(NetID(n), tm); !ok {
				t.Fatalf("parallel: net %d unobservable at t=%d", n, tm)
			}
			if _, ok := ct.ValueAt(NetID(n), tm); !ok {
				hidden++
			}
		}
	}
	if hidden == 0 {
		t.Fatal("pcset monitoring hid nothing — the asymmetry test lost its subject")
	}

	// Monitoring every net makes the whole waveform observable: the
	// PRINT group's minimum minlevel is 0 (the primary inputs), so
	// zero-insertion extends every other net back to time 0.
	all := make([]NetID, c.NumNets())
	for n := range all {
		all[n] = NetID(n)
	}
	full, err := Open(c, TechPCSet, WithMonitor(all...))
	if err != nil {
		t.Fatal(err)
	}
	if err := full.ResetConsistent(nil); err != nil {
		t.Fatal(err)
	}
	if err := full.Apply(vec); err != nil {
		t.Fatal(err)
	}
	ft := full.(Tracer)
	for n := 0; n < full.Circuit().NumNets(); n++ {
		for tm := 0; tm <= full.Depth(); tm++ {
			fv, ok := ft.ValueAt(NetID(n), tm)
			if !ok {
				t.Fatalf("pcset monitor-all: net %d unobservable at t=%d", n, tm)
			}
			if pv, _ := pt.ValueAt(NetID(n), tm); pv != fv {
				t.Fatalf("pcset monitor-all: net %d t=%d disagrees with parallel", n, tm)
			}
		}
	}
}
