// Crosscheck: run the same vector stream through every engine — two
// interpreted event-driven baselines, the PC-set method, and four
// parallel-technique variants — and verify that all of them agree on
// every final value, that the waveform-tracing engines agree at every
// time step, and report the hazard (glitch) activity the unit-delay model
// exposes.
package main

import (
	"fmt"
	"log"

	"udsim"
	"udsim/internal/hazard"
	"udsim/internal/vectors"
)

func main() {
	ckt, err := udsim.ISCAS85("c880")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit: %s\n", ckt)

	techs := udsim.Techniques()
	engines := make([]udsim.Engine, 0, len(techs))
	for _, tech := range techs {
		e, err := udsim.NewEngine(tech, ckt)
		if err != nil {
			log.Fatal(err)
		}
		if err := e.ResetConsistent(nil); err != nil {
			log.Fatal(err)
		}
		engines = append(engines, e)
		fmt.Printf("  engine ready: %s\n", e.EngineName())
	}

	const nvec = 200
	vecs := vectors.Random(nvec, len(ckt.Inputs), 7)
	names := make([]string, 0, ckt.NumNets())
	for i := range ckt.Nets {
		names = append(names, ckt.Nets[i].Name)
	}

	glitches := map[hazard.Kind]int{}
	ref := engines[0]
	for _, vec := range vecs.Bits {
		for _, e := range engines {
			if err := e.Apply(vec); err != nil {
				log.Fatalf("%s: %v", e.EngineName(), err)
			}
		}
		// Final-value agreement across every engine, by net name (the
		// engines may normalize the circuit differently).
		for _, name := range names {
			idRef, _ := ref.Circuit().NetByName(name)
			want := ref.Final(idRef)
			for _, e := range engines[1:] {
				id, ok := e.Circuit().NetByName(name)
				if !ok {
					log.Fatalf("%s: net %s missing", e.EngineName(), name)
				}
				if e.Final(id) != want {
					log.Fatalf("DISAGREEMENT on %s: %s says %v, %s says %v",
						name, ref.EngineName(), want, e.EngineName(), e.Final(id))
				}
			}
		}
		// Hazard census from one full-waveform engine.
		var par *udsim.ParallelSim
		for _, e := range engines {
			if p, ok := e.(*udsim.ParallelSim); ok && e.EngineName() == "parallel" {
				par = p
				break
			}
		}
		for _, o := range par.Circuit().Outputs {
			_, kind := hazard.FromHistory(par.History(o))
			glitches[kind]++
		}
	}

	fmt.Printf("\nall %d engines agree on every net for %d vectors ✓\n", len(engines), nvec)
	fmt.Printf("primary-output hazard census (%d output-vectors):\n", nvec*len(ckt.Outputs))
	for _, k := range []hazard.Kind{hazard.Clean, hazard.Static, hazard.Dynamic} {
		fmt.Printf("  %-8s %6d\n", k, glitches[k])
	}
}
