// ATPG: the full test-engineering flow built on the compiled simulation
// machinery — random-pattern fault simulation first (cheap coverage),
// SCOAP testability to see what random patterns will miss, then PODEM
// test generation to top up coverage and prove the remainder redundant.
package main

import (
	"fmt"
	"log"
	"time"

	"udsim"
	"udsim/internal/vectors"
)

func main() {
	ckt, err := udsim.ISCAS85("c432")
	if err != nil {
		log.Fatal(err)
	}
	fs, err := udsim.NewFaultSim(ckt)
	if err != nil {
		log.Fatal(err)
	}
	cn := fs.Circuit()
	faults := udsim.AllFaults(cn)
	fmt.Printf("circuit: %s\nfault universe: %d\n\n", cn, len(faults))

	// Phase 1: random patterns.
	rand := vectors.Random(256, len(cn.Inputs), 1990).Bits
	res, err := fs.Run(faults, rand)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1 — 256 random patterns: %.1f%% coverage (%d faults left)\n",
		100*res.Coverage(), len(res.Undetected))

	// Phase 2: SCOAP explains the leftovers.
	sc, err := udsim.AnalyzeTestability(cn)
	if err != nil {
		log.Fatal(err)
	}
	var worst udsim.Fault
	var worstCost int64 = -1
	for _, f := range res.Undetected {
		if c := sc.Testability(f.Net, f.Kind == udsim.StuckAt1); c < udsim.TestabilityInfinity && c > worstCost {
			worstCost = c
			worst = f
		}
	}
	fmt.Printf("phase 2 — SCOAP: hardest undetected fault is %s/%s (detect cost %d)\n",
		cn.Net(worst.Net).Name, worst.Kind, worstCost)

	// Phase 3: PODEM tops up.
	gen, err := udsim.NewATPG(cn)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	sum, err := gen.GenerateAll(res.Undetected)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 3 — PODEM on the %d leftovers (%v):\n", len(res.Undetected),
		time.Since(start).Round(time.Millisecond))
	fmt.Printf("  %d new patterns, %d detected, %d proved redundant, %d aborted\n",
		len(sum.Patterns), sum.Found, sum.Untestable, sum.Aborted)

	// Final coverage with the combined pattern set.
	all := append([][]bool{}, rand...)
	for _, p := range sum.Patterns {
		all = append(all, p.Inputs)
	}
	final, err := fs.Run(faults, all)
	if err != nil {
		log.Fatal(err)
	}
	testable := len(faults) - sum.Untestable
	fmt.Printf("\nfinal: %.1f%% raw coverage, %.1f%% of testable faults, %d patterns total\n",
		100*final.Coverage(),
		100*float64(len(final.Detected))/float64(testable),
		len(all))
}
