// Codegen: show the actual straight-line source each technique generates
// for the paper's Fig. 4 network (D = A & B, E = D & C) — the PC-set
// method's per-potential-change statements (Fig. 4 of the paper) and the
// parallel technique's shift-and-OR statements (Fig. 6), in both C and Go.
package main

import (
	"fmt"
	"log"
	"os"

	"udsim"
	"udsim/internal/codegen"
)

func main() {
	b := udsim.NewBuilder("fig4")
	a := b.Input("A")
	bn := b.Input("B")
	c := b.Input("C")
	d := b.Gate(udsim.And, "D", a, bn)
	e := b.Gate(udsim.And, "E", d, c)
	b.Output(e)
	ckt := b.MustBuild()

	for _, tech := range []string{"pcset", "parallel", "parallel-pt", "lcc"} {
		eng, err := udsim.NewEngine(tech, ckt)
		if err != nil {
			log.Fatal(err)
		}
		initP, simP, ok := udsim.Programs(eng)
		if !ok {
			continue
		}
		units := []codegen.Unit{}
		if len(initP.Code) > 0 {
			units = append(units, codegen.Unit{Name: "initvec", Prog: initP})
		}
		units = append(units, codegen.Unit{Name: "simvec", Prog: simP})

		fmt.Printf("================ %s: generated C ================\n", eng.EngineName())
		if _, err := codegen.Emit(os.Stdout, codegen.C, "fig4", units); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("---------------- %s: disassembly ----------------\n", eng.EngineName())
		fmt.Println(simP.Disassemble())
	}

	// The Go emission is verified parseable with the standard library.
	eng, _ := udsim.NewEngine("pcset", ckt)
	_, simP, _ := udsim.Programs(eng)
	var buf mybuf
	if _, err := codegen.Emit(&buf, codegen.Go, "fig4gen", []codegen.Unit{{Name: "simvec", Prog: simP}}); err != nil {
		log.Fatal(err)
	}
	if err := codegen.CheckGo(buf.s); err != nil {
		log.Fatalf("generated Go does not parse: %v", err)
	}
	fmt.Println("generated Go parses cleanly with go/parser ✓")
}

type mybuf struct{ s string }

func (b *mybuf) Write(p []byte) (int, error) {
	b.s += string(p)
	return len(p), nil
}
