// Multiplier: simulate the c6288-class 16×16 array multiplier with the
// fully optimized parallel technique (path-tracing shift elimination plus
// bit-field trimming) and verify every product against native integer
// multiplication — the generated circuit really multiplies.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"udsim"
)

const width = 16

func main() {
	ckt := udsim.Multiplier(width, true) // authentic 9-NOR adder cells
	fmt.Printf("circuit: %s\n", ckt)

	eng, err := udsim.Open(ckt, udsim.TechParallel,
		udsim.WithShiftElimination(udsim.PathTracing),
		udsim.WithTrimming(),
	)
	if err != nil {
		log.Fatal(err)
	}
	sim := eng.(*udsim.ParallelSim) // ShiftCount sits below the Introspector surface
	fmt.Printf("engine: %s, depth %d gate delays, %d compiled instructions, %d retained shifts\n",
		sim.EngineName(), sim.Depth(), sim.CodeSize(), sim.ShiftCount())

	if err := sim.ResetConsistent(nil); err != nil {
		log.Fatal(err)
	}

	// Output nets p0..p31 on the engine's circuit.
	outs := make([]udsim.NetID, 2*width)
	for i := range outs {
		id, ok := sim.Circuit().NetByName(fmt.Sprintf("p%d", i))
		if !ok {
			log.Fatalf("output p%d missing", i)
		}
		outs[i] = id
	}

	r := rand.New(rand.NewSource(42))
	const trials = 2000
	vec := make([]bool, 2*width)
	start := time.Now()
	for k := 0; k < trials; k++ {
		x := uint64(r.Intn(1 << width))
		y := uint64(r.Intn(1 << width))
		for i := 0; i < width; i++ {
			vec[i] = x>>uint(i)&1 == 1
			vec[width+i] = y>>uint(i)&1 == 1
		}
		if err := sim.Apply(vec); err != nil {
			log.Fatal(err)
		}
		var p uint64
		for i, id := range outs {
			if sim.Final(id) {
				p |= 1 << uint(i)
			}
		}
		if p != x*y {
			log.Fatalf("MISMATCH: %d * %d = %d, circuit says %d", x, y, x*y, p)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("verified %d random products in %v (%.0f vectors/sec) — all correct\n",
		trials, elapsed.Round(time.Millisecond), float64(trials)/elapsed.Seconds())

	// Show the settling profile of one multiply: how many product bits
	// already hold their final value at each gate delay.
	x, y := uint64(40503), uint64(28764)
	for i := 0; i < width; i++ {
		vec[i] = x>>uint(i)&1 == 1
		vec[width+i] = y>>uint(i)&1 == 1
	}
	if err := sim.Apply(vec); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsettling profile of %d * %d = %d:\n", x, y, x*y)
	for t := 0; t <= sim.Depth(); t += 10 {
		settled := 0
		for _, id := range outs {
			v, _ := sim.ValueAt(id, t)
			if v == sim.Final(id) {
				settled++
			}
		}
		fmt.Printf("  t=%3d: %2d/%d output bits at final value\n", t, settled, len(outs))
	}
}
