// Quickstart: build a tiny circuit with the API, compile it with the
// parallel technique, and watch a unit-delay glitch that zero-delay
// simulation cannot show.
//
// The circuit is the paper's Fig. 11: B = NOT A, C = AND(A, B). When A
// rises, C pulses high for exactly one gate delay — the canonical static
// hazard.
package main

import (
	"fmt"
	"log"

	"udsim"
)

func main() {
	b := udsim.NewBuilder("quickstart")
	a := b.Input("A")
	n := b.Gate(udsim.Not, "B", a)
	c := b.Gate(udsim.And, "C", a, n)
	b.Output(c)
	ckt := b.MustBuild()

	eng, err := udsim.Open(ckt, udsim.TechParallel)
	if err != nil {
		log.Fatal(err)
	}
	sim := eng.(interface {
		udsim.Engine
		udsim.Tracer
	})
	// Start from the settled state for A=0, then raise A.
	if err := sim.ResetConsistent([]bool{false}); err != nil {
		log.Fatal(err)
	}
	if err := sim.Apply([]bool{true}); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("circuit: %s (depth %d)\n\n", ckt, sim.Depth())
	fmt.Println("time :  A  B  C")
	for t := 0; t <= sim.Depth(); t++ {
		av, _ := sim.ValueAt(a, t)
		bv, _ := sim.ValueAt(n, t)
		cv, _ := sim.ValueAt(c, t)
		fmt.Printf("  %d  :  %s  %s  %s\n", t, bit(av), bit(bv), bit(cv))
	}
	fmt.Println("\nC pulses at t=1: the unit-delay glitch a zero-delay simulator misses.")

	// The same vector through the zero-delay engine: no glitch visible.
	zd, err := udsim.NewZeroDelay(ckt)
	if err != nil {
		log.Fatal(err)
	}
	if err := zd.Apply([]bool{true}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("zero-delay steady state of C: %s\n", bit(zd.Final(c)))
}

func bit(v bool) string {
	if v {
		return "1"
	}
	return "0"
}
