// Faultsim: grade the full single-stuck-at fault universe of a benchmark
// circuit against random vectors using 63-way parallel fault simulation —
// the classic industrial application of bit-parallel compiled simulation,
// built directly on the zero-delay LCC engine's lanes.
//
// The run prints the fault-coverage curve (coverage after N vectors),
// which shows the familiar fast-then-flat profile of random-pattern
// testing.
package main

import (
	"fmt"
	"log"
	"time"

	"udsim"
	"udsim/internal/vectors"
)

func main() {
	ckt, err := udsim.ISCAS85("c880")
	if err != nil {
		log.Fatal(err)
	}
	fs, err := udsim.NewFaultSim(ckt)
	if err != nil {
		log.Fatal(err)
	}
	cn := fs.Circuit()
	faults := udsim.AllFaults(cn)
	fmt.Printf("circuit: %s\nfault universe: %d single stuck-at faults\n", cn, len(faults))

	const nvec = 512
	vecs := vectors.Random(nvec, len(cn.Inputs), 1990).Bits

	start := time.Now()
	res, err := fs.Run(faults, vecs)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	// Coverage curve from first-detection indices.
	detectedBy := make([]int, nvec+1)
	for _, v := range res.Detected {
		detectedBy[v+1]++
	}
	cum := 0
	fmt.Println("\nvectors  coverage")
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512} {
		for ; cum < n && cum < len(detectedBy)-1; cum++ {
		}
		det := 0
		for i := 1; i <= n; i++ {
			det += detectedBy[i]
		}
		fmt.Printf("  %5d   %5.1f%%\n", n, 100*float64(det)/float64(len(faults)))
	}
	fmt.Printf("\nfinal coverage: %.1f%% (%d detected, %d undetected) in %v\n",
		100*res.Coverage(), len(res.Detected), len(res.Undetected),
		elapsed.Round(time.Millisecond))
	fmt.Printf("effective rate: %.1f million fault-vector evaluations/second\n",
		float64(len(faults))*float64(nvec)/elapsed.Seconds()/1e6)

	if len(res.Undetected) > 0 {
		fmt.Println("\nfirst few undetected faults (random-pattern-resistant):")
		for i, f := range res.Undetected {
			if i == 5 {
				break
			}
			fmt.Printf("  %s/%s\n", cn.Net(f.Net).Name, f.Kind)
		}
	}
}
