// Sequential: simulate synchronous sequential circuits by the paper's §1
// construction — break the circuit at its flip-flops, compile the
// combinational core with any unit-delay engine, and feed the state back
// every clock cycle.
//
// Two machines are shown: an 8-bit counter and a 16-bit Fibonacci LFSR,
// each driven through a compiled parallel-technique core.
package main

import (
	"fmt"
	"log"

	"udsim"
)

func main() {
	counterDemo()
	lfsrDemo()
}

func counterDemo() {
	seq, err := udsim.NewSequential(udsim.Counter(8), func(c *udsim.Circuit) (udsim.Engine, error) {
		return udsim.Open(c, udsim.TechParallel, udsim.WithShiftElimination(udsim.PathTracing))
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("8-bit counter over %s core (depth %d)\n",
		seq.Engine().EngineName(), seq.Engine().Depth())
	for cycle := 1; cycle <= 300; cycle++ {
		if _, err := seq.Step([]bool{true}); err != nil {
			log.Fatal(err)
		}
		if cycle%50 == 0 {
			fmt.Printf("  after %3d cycles: %3d\n", cycle, seq.Uint())
		}
	}
	if seq.Uint() != 300%256 {
		log.Fatalf("counter wrong: %d", seq.Uint())
	}
	fmt.Println("  counter matches cycle count mod 256")
}

// lfsrDemo builds a 16-bit Fibonacci LFSR (taps 16,15,13,4 — maximal
// length) and checks its period structure on a short run.
func lfsrDemo() {
	b := udsim.NewBuilder("lfsr16")
	// One dummy primary input keeps the vector non-empty (a pure
	// autonomous machine has no inputs).
	run := b.Input("run")
	qs := make([]udsim.NetID, 16)
	for i := range qs {
		qs[i] = b.FlipFlop(fmt.Sprintf("q%d", i), udsim.NetID(-1))
	}
	// Feedback: taps at bits 15, 14, 12, 3 (0-indexed).
	t1 := b.Gate(udsim.Xor, "t1", qs[15], qs[14])
	t2 := b.Gate(udsim.Xor, "t2", t1, qs[12])
	fb := b.Gate(udsim.Xor, "fb", t2, qs[3])
	// Gate the feedback with run so the register holds when run=0.
	hold := b.Gate(udsim.And, "hold", fb, run)
	b.BindFlipFlop(qs[0], hold)
	for i := 1; i < 16; i++ {
		d := b.Gate(udsim.Buf, fmt.Sprintf("d%d", i), qs[i-1])
		b.BindFlipFlop(qs[i], d)
	}
	b.Output(qs[15])
	ckt := b.MustBuild()

	seq, err := udsim.NewSequential(ckt, func(c *udsim.Circuit) (udsim.Engine, error) {
		return udsim.Open(c, udsim.TechPCSet)
	})
	if err != nil {
		log.Fatal(err)
	}
	// Seed the register with 1.
	state := make([]bool, 16)
	state[0] = true
	if err := seq.SetState(state); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n16-bit LFSR over %s core\n", seq.Engine().EngineName())
	seen := map[uint64]int{seq.Uint(): 0}
	period := 0
	for cycle := 1; cycle <= 1<<17; cycle++ {
		if _, err := seq.Step([]bool{true}); err != nil {
			log.Fatal(err)
		}
		if prev, ok := seen[seq.Uint()]; ok {
			period = cycle - prev
			break
		}
		seen[seq.Uint()] = cycle
	}
	fmt.Printf("  first state revisit after %d steps (maximal-length would be %d)\n",
		period, 1<<16-1)
	if period == 0 {
		log.Fatal("LFSR never revisited a state")
	}
}
