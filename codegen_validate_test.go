package udsim

import (
	"strings"
	"testing"

	"udsim/internal/verify"
)

// TestWithCodegenValidation asserts the facade option translation-
// validates both compiled techniques' emissions at build time and that
// the on-demand ValidateCodegen helper produces a clean V016–V018
// report for the same engines.
func TestWithCodegenValidation(t *testing.T) {
	c, err := ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	for _, tech := range []Technique{TechParallel, TechPCSet} {
		e, err := Open(c, tech, WithCodegenValidation())
		if err != nil {
			t.Fatalf("%v: %v", tech, err)
		}
		rep, err := ValidateCodegen(e)
		if err != nil {
			t.Fatalf("%v: %v", tech, err)
		}
		if err := rep.Err(); err != nil {
			t.Fatalf("%v: report not clean: %v", tech, err)
		}
		for _, rule := range []string{verify.RuleLift, verify.RuleLiftCert, verify.RuleEmitHygiene} {
			if rep.HasRule(rule) {
				t.Fatalf("%v: unexpected %s finding", tech, rule)
			}
		}
	}
}

// TestWithCodegenValidationComposes exercises the option together with
// the program-rewriting passes — the validated streams must be the
// final, post-elimination ones.
func TestWithCodegenValidationComposes(t *testing.T) {
	c, err := ISCAS85("c880")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(c, TechParallel,
		WithTrimming(), WithDeadStoreElimination(), WithCodegenValidation()); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(c, TechPCSet,
		WithDeadStoreElimination(), WithCodegenValidation()); err != nil {
		t.Fatal(err)
	}
}

// TestCodegenValidationRejectedForInterpreted pins the compiled-only
// contract for the new option and the helper.
func TestCodegenValidationRejectedForInterpreted(t *testing.T) {
	c, err := ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	for _, tech := range []Technique{TechEvent3, TechEvent2, TechLCC} {
		_, err := Open(c, tech, WithCodegenValidation())
		if err == nil || !strings.Contains(err.Error(), "WithCodegenValidation") {
			t.Fatalf("%v: want WithCodegenValidation rejection, got %v", tech, err)
		}
	}
	e, err := Open(c, TechEvent3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateCodegen(e); err == nil {
		t.Fatal("ValidateCodegen accepted an interpreted engine")
	}
}
