#!/usr/bin/env bash
# End-to-end smoke test for the multi-tenant simulation service:
# start udserve, stream a 256-vector batch for c432 over HTTP, assert
# the outputs are bit-identical to the udsim CLI on the same seeded
# stream, check the /metrics families, then SIGTERM and assert a clean
# zero-loss drain. Pure POSIX tools — no jq, no python.
set -euo pipefail

ADDR="${UDSERVE_ADDR:-127.0.0.1:18473}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"; [ -n "${SRV_PID:-}" ] && kill "$SRV_PID" 2>/dev/null || true' EXIT

echo "== build"
go build -o "$WORK/udserve" ./cmd/udserve
go build -o "$WORK/udsim" ./cmd/udsim

echo "== reference run (udsim CLI, c432, 256 vectors, seed 1990)"
"$WORK/udsim" -gen c432 -vectors 256 -seed 1990 > "$WORK/ref.txt"
# Lines look like: vector    0: in=0101... out=10...
awk '{for(i=1;i<=NF;i++){if($i~/^in=/)print substr($i,4)}}'  "$WORK/ref.txt" > "$WORK/ins.txt"
awk '{for(i=1;i<=NF;i++){if($i~/^out=/)print substr($i,5)}}' "$WORK/ref.txt" > "$WORK/want.txt"
[ "$(wc -l < "$WORK/ins.txt")" -eq 256 ] || { echo "FAIL: expected 256 reference vectors"; exit 1; }

echo "== start udserve on $ADDR"
"$WORK/udserve" -addr "$ADDR" 2> "$WORK/serve.log" &
SRV_PID=$!
for i in $(seq 1 50); do
  if curl -sf "http://$ADDR/healthz" > /dev/null 2>&1; then break; fi
  [ "$i" -eq 50 ] && { echo "FAIL: udserve never became healthy"; cat "$WORK/serve.log"; exit 1; }
  sleep 0.1
done

echo "== POST /v1/batches (256 vectors)"
{
  printf '{"gen":"c432","vectors":['
  awk 'NR>1{printf ","} {printf "\"%s\"", $0}' "$WORK/ins.txt"
  printf ']}'
} > "$WORK/req.json"
curl -sf -X POST -H 'X-Tenant-ID: smoke' --data-binary @"$WORK/req.json" \
  "http://$ADDR/v1/batches" > "$WORK/resp.json"

# Outputs are plain 0/1 strings, so shell-grade JSON slicing is safe.
sed -n 's/.*"outputs":\[\([^]]*\)\].*/\1/p' "$WORK/resp.json" | tr ',' '\n' | tr -d '"' > "$WORK/got.txt"
if ! cmp -s "$WORK/want.txt" "$WORK/got.txt"; then
  echo "FAIL: served outputs differ from the udsim CLI"
  diff "$WORK/want.txt" "$WORK/got.txt" | head
  exit 1
fi
echo "   256 vectors bit-identical to the CLI"
grep -q '"cache":"miss"' "$WORK/resp.json" || { echo "FAIL: first batch should be a cache miss"; exit 1; }

echo "== warm request is a cache hit"
curl -sf -X POST --data-binary @"$WORK/req.json" "http://$ADDR/v1/batches" > "$WORK/resp2.json"
grep -q '"cache":"hit"' "$WORK/resp2.json" || { echo "FAIL: second batch should be a cache hit"; exit 1; }

echo "== /metrics"
curl -sf "http://$ADDR/metrics" > "$WORK/metrics.txt"
for fam in \
  'udsim_serve_compiles_total{server="udserve"} 1' \
  'udsim_serve_cache_hits_total{server="udserve"} 1' \
  'udsim_serve_batches_completed_total{server="udserve"} 2' \
  'udsim_serve_vectors_total{server="udserve"} 512' \
  'udsim_serve_program_batches_total'; do
  grep -qF "$fam" "$WORK/metrics.txt" || { echo "FAIL: /metrics missing: $fam"; cat "$WORK/metrics.txt"; exit 1; }
done
echo "   compile-once and counter families verified"

echo "== SIGTERM drain"
kill -TERM "$SRV_PID"
if ! wait "$SRV_PID"; then
  echo "FAIL: udserve exited non-zero on drain"; cat "$WORK/serve.log"; exit 1
fi
SRV_PID=""
grep -q 'drained clean' "$WORK/serve.log" || { echo "FAIL: no clean-drain report"; cat "$WORK/serve.log"; exit 1; }
grep -q '2 batches completed' "$WORK/serve.log" || { echo "FAIL: drain lost batches"; cat "$WORK/serve.log"; exit 1; }
echo "PASS: serve smoke"
