package udsim

import (
	"context"

	"udsim/internal/async"
)

// Outcome reports how an asynchronous circuit responded to a vector.
type Outcome = async.Outcome

// Asynchronous simulation outcomes.
const (
	// Settled means the circuit reached a stable state.
	Settled = async.Settled
	// Oscillating means the circuit entered a repeating state cycle.
	Oscillating = async.Oscillating
)

// NewAsyncBuilderCircuit finalizes a Builder as an asynchronous circuit
// whose combinational graph may contain cycles (cross-coupled latches,
// ring oscillators). Such circuits are rejected by every compiled engine
// — the paper's techniques require acyclic circuits (§1) and name
// asynchronous circuits as future work — and are simulated by NewAsync.
func NewAsyncBuilderCircuit(b *Builder) (*Circuit, error) { return b.BuildAsync() }

// NewAsync builds the interpreted event-driven unit-delay simulator for
// asynchronous circuits: it tolerates combinational cycles, detects
// settling and oscillation, and provides the reference semantics a future
// compiled asynchronous technique would have to match.
func NewAsync(c *Circuit) (*AsyncSim, error) {
	s, err := async.New(c)
	if err != nil {
		return nil, err
	}
	return &AsyncSim{s: s}, nil
}

// AsyncSim simulates asynchronous (possibly cyclic) circuits.
type AsyncSim struct{ s *async.Sim }

// Circuit returns the (normalized) circuit.
func (a *AsyncSim) Circuit() *Circuit { return a.s.Circuit() }

// Apply presents one input vector and propagates unit-delay events until
// the circuit settles or an oscillation is detected, returning the
// outcome and the number of time steps simulated.
func (a *AsyncSim) Apply(vec []bool) (Outcome, int, error) { return a.s.ApplyVector(vec) }

// ApplyCtx is Apply under guard: ctx is checked between time steps, so a
// deadline or cancellation interrupts even a pathological settling loop,
// surfacing as a typed *EngineFault.
func (a *AsyncSim) ApplyCtx(ctx context.Context, vec []bool) (Outcome, int, error) {
	return a.s.ApplyVectorCtx(ctx, vec)
}

// Value returns the current three-valued value of a net (X until driven).
func (a *AsyncSim) Value(n NetID) V3 { return a.s.Value(n) }

// SetNet forces a net's value, e.g. to initialize a latch out of X.
func (a *AsyncSim) SetNet(n NetID, v V3) { a.s.SetNet(n, v) }
