package udsim

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"udsim/internal/ckttest"
	"udsim/internal/vectors"
)

// glitchCircuit builds C = AND(A, NOT A).
func glitchCircuit() *Circuit {
	b := NewBuilder("glitch")
	a := b.Input("A")
	n := b.Gate(Not, "N", a)
	c := b.Gate(And, "C", a, n)
	b.Output(c)
	return b.MustBuild()
}

func TestAllEnginesAgreeOnFinals(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 6; trial++ {
		c := ckttest.Random(r, 40, 5)
		engines := make([]Engine, 0, len(Techniques()))
		for _, tech := range Techniques() {
			e, err := NewEngine(tech, c)
			if err != nil {
				t.Fatalf("%s: %v", tech, err)
			}
			if err := e.ResetConsistent(nil); err != nil {
				t.Fatal(err)
			}
			engines = append(engines, e)
		}
		vecs := vectors.Random(12, len(c.Inputs), int64(trial))
		for _, vec := range vecs.Bits {
			for _, e := range engines {
				if err := e.Apply(vec); err != nil {
					t.Fatalf("%s: %v", e.EngineName(), err)
				}
			}
			ref := engines[0]
			for _, e := range engines[1:] {
				for n := 0; n < c.NumNets(); n++ {
					// Engines may normalize differently; compare by
					// name through each engine's own circuit.
					name := c.Nets[n].Name
					id1, ok1 := ref.Circuit().NetByName(name)
					id2, ok2 := e.Circuit().NetByName(name)
					if !ok1 || !ok2 {
						t.Fatalf("net %s lost", name)
					}
					if ref.Final(id1) != e.Final(id2) {
						t.Fatalf("%s and %s disagree on final of %s",
							ref.EngineName(), e.EngineName(), name)
					}
				}
			}
		}
	}
}

func TestTracersAgreeOnWaveforms(t *testing.T) {
	c := glitchCircuit()
	par, err := openParallelSim(c, WithWordBits(8))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEventDriven(c, false)
	if err != nil {
		t.Fatal(err)
	}
	cID, _ := c.NetByName("C")
	for _, e := range []Engine{par, ev} {
		if err := e.ResetConsistent([]bool{false}); err != nil {
			t.Fatal(err)
		}
		if err := e.Apply([]bool{true}); err != nil {
			t.Fatal(err)
		}
		tr := e.(Tracer)
		want := []bool{false, true, false}
		for tm, w := range want {
			got, ok := tr.ValueAt(cID, tm)
			if !ok || got != w {
				t.Errorf("%s: C at t=%d = %v,%v want %v", e.EngineName(), tm, got, ok, w)
			}
		}
	}
}

func TestEngineNames(t *testing.T) {
	c := glitchCircuit()
	for _, tech := range Techniques() {
		e, err := NewEngine(tech, c)
		if err != nil {
			t.Fatalf("%s: %v", tech, err)
		}
		if e.EngineName() == "" {
			t.Errorf("%s: empty engine name", tech)
		}
	}
	if _, err := NewEngine("frobnicate", c); err == nil {
		t.Error("expected unknown-technique error")
	}
}

func TestBenchRoundTripThroughFacade(t *testing.T) {
	c, err := ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBench(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := ParseBench(&buf, "c432")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumGates() != c.NumGates() {
		t.Errorf("round trip changed gate count: %d vs %d", back.NumGates(), c.NumGates())
	}
}

func TestSequentialCounterAcrossEngines(t *testing.T) {
	for _, tech := range []string{"parallel", "pcset", "event2", "lcc", "parallel-pt-trim"} {
		c := Counter(5)
		seq, err := NewSequential(c, func(cc *Circuit) (Engine, error) {
			return NewEngine(tech, cc)
		})
		if err != nil {
			t.Fatalf("%s: %v", tech, err)
		}
		for step := 1; step <= 40; step++ {
			if _, err := seq.Step([]bool{true}); err != nil {
				t.Fatal(err)
			}
			if got := seq.Uint(); got != uint64(step%32) {
				t.Fatalf("%s: after %d steps counter = %d", tech, step, got)
			}
		}
		// Disabled counter holds.
		before := seq.Uint()
		if _, err := seq.Step([]bool{false}); err != nil {
			t.Fatal(err)
		}
		if seq.Uint() != before {
			t.Errorf("%s: disabled counter advanced", tech)
		}
	}
}

func TestSequentialSetState(t *testing.T) {
	seq, err := NewSequential(Counter(4), func(c *Circuit) (Engine, error) {
		return openParallelSim(c)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.SetState([]bool{true, false, true, false}); err != nil {
		t.Fatal(err)
	}
	if seq.Uint() != 5 {
		t.Fatalf("state = %d, want 5", seq.Uint())
	}
	if _, err := seq.Step([]bool{true}); err != nil {
		t.Fatal(err)
	}
	if seq.Uint() != 6 {
		t.Errorf("5+1 = %d", seq.Uint())
	}
	if err := seq.SetState([]bool{true}); err == nil {
		t.Error("expected width error")
	}
	if _, err := seq.Step([]bool{}); err == nil {
		t.Error("expected input width error")
	}
	if seq.NumFlipFlops() != 4 || seq.Circuit().Name != "counter4" {
		t.Error("accessors wrong")
	}
}

func TestSequentialRejectsCombinational(t *testing.T) {
	if _, err := NewSequential(glitchCircuit(), func(c *Circuit) (Engine, error) {
		return openParallelSim(c)
	}); err == nil {
		t.Error("expected no-flip-flops error")
	}
}

func TestProgramsAccessor(t *testing.T) {
	c := glitchCircuit()
	for _, tech := range []string{"pcset", "parallel", "lcc"} {
		e, _ := NewEngine(tech, c)
		_, sim, ok := Programs(e)
		if !ok || sim == nil {
			t.Errorf("%s: Programs not available", tech)
		}
		if len(sim.Code) == 0 {
			t.Errorf("%s: empty sim program", tech)
		}
	}
	ev, _ := NewEngine("event2", c)
	if _, _, ok := Programs(ev); ok {
		t.Error("event-driven engine should not expose programs")
	}
}

// TestMultiplierPropertyAllEngines: the compiled engines compute real
// products on the 8x8 multiplier.
func TestMultiplierPropertyAllEngines(t *testing.T) {
	c := Multiplier(8, false)
	par, err := openParallelSim(c, WithShiftElimination(PathTracing), WithTrimming())
	if err != nil {
		t.Fatal(err)
	}
	if err := par.ResetConsistent(nil); err != nil {
		t.Fatal(err)
	}
	cn := par.Circuit()
	f := func(x, y uint8) bool {
		vec := make([]bool, 16)
		for i := 0; i < 8; i++ {
			vec[i] = x>>uint(i)&1 == 1
			vec[8+i] = y>>uint(i)&1 == 1
		}
		if err := par.Apply(vec); err != nil {
			return false
		}
		var p uint64
		for i := 0; i < 16; i++ {
			id, ok := cn.NetByName("p" + itoa(i))
			if !ok {
				return false
			}
			if par.Final(id) {
				p |= 1 << uint(i)
			}
		}
		return p == uint64(x)*uint64(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	s := ""
	for i > 0 {
		s = string(rune('0'+i%10)) + s
		i /= 10
	}
	return s
}

func TestLevelizeFacade(t *testing.T) {
	c := ckttest.Fig4()
	a, err := Levelize(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Depth != 2 {
		t.Errorf("depth = %d, want 2", a.Depth)
	}
}

func TestISCAS85NamesStable(t *testing.T) {
	names := ISCAS85Names()
	if len(names) != 10 || names[0] != "c432" || names[9] != "c7552" {
		t.Errorf("names = %v", names)
	}
	if !strings.HasPrefix(names[8], "c6288") {
		t.Errorf("names = %v", names)
	}
}
